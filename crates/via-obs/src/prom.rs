//! Prometheus text exposition (version 0.0.4) for metric snapshots.
//!
//! Rendering is purely a function of the snapshot's deterministic core, so
//! two byte-identical snapshots render to byte-identical expositions.
//! Histogram buckets follow the Prometheus convention: `_bucket{le="..."}`
//! series are cumulative and end with `le="+Inf"`, alongside `_count`.
//! There is no `_sum` series — the deterministic core stores no
//! floating-point sums (they are not associative under merge) — so exact
//! `_min`/`_max` gauges are exported instead.

use std::fmt::Write as _;

use crate::snapshot::MetricsSnapshot;

/// Maps a metric name to a valid Prometheus identifier:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every other byte replaced by `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a bucket bound for an `le` label (`+Inf` for the overflow edge).
fn le_label(bound: Option<f64>) -> String {
    match bound {
        Some(b) => format!("{b}"),
        None => "+Inf".to_string(),
    }
}

/// Renders the snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        let name = prom_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for h in &snap.histograms {
        let name = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, count) in h.counts.iter().enumerate() {
            cum += count;
            let le = le_label(h.bounds.get(i).copied());
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_count {}", h.count);
        if h.dropped_nonfinite > 0 {
            let _ = writeln!(out, "# TYPE {name}_dropped_nonfinite counter");
            let _ = writeln!(out, "{name}_dropped_nonfinite {}", h.dropped_nonfinite);
        }
        if h.count > 0 {
            let _ = writeln!(out, "# TYPE {name}_min gauge");
            let _ = writeln!(out, "{name}_min {}", h.min);
            let _ = writeln!(out, "# TYPE {name}_max gauge");
            let _ = writeln!(out, "{name}_max {}", h.max);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LATENCY_MS;
    use crate::MetricSink;

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("replay.window-ms"), "replay_window_ms");
        assert_eq!(prom_name("9lives"), "_lives");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn exposition_has_cumulative_buckets_and_inf_edge() {
        let mut sink = MetricSink::new();
        sink.inc("calls_total", 3);
        sink.observe("rtt_ms", LATENCY_MS, 4.0);
        sink.observe("rtt_ms", LATENCY_MS, 90.0);
        let text = to_prometheus(&sink.snapshot());
        assert!(text.contains("# TYPE calls_total counter\ncalls_total 3\n"));
        assert!(text.contains("# TYPE rtt_ms histogram"));
        assert!(text.contains("rtt_ms_bucket{le=\"5\"} 1"));
        assert!(text.contains("rtt_ms_bucket{le=\"100\"} 2"));
        assert!(text.contains("rtt_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rtt_ms_count 2"));
        assert!(text.contains("rtt_ms_min 4"));
        assert!(text.contains("rtt_ms_max 90"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("rtt_ms_bucket")) {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            assert!(v >= last, "{line}");
            last = v;
        }
    }
}
