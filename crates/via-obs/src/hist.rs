//! Fixed-bucket histograms with a merge algebra safe for deterministic
//! parallel recording.
//!
//! The deterministic core of the observability layer may only contain
//! aggregates whose merge is associative *and* commutative in exact
//! arithmetic, so that merging per-worker sinks yields byte-identical
//! results for every worker count and shard assignment. Bucket counts
//! (`u64` adds) and exact running extremes (`f64::min`/`max` select one of
//! the recorded values, they never round) qualify; floating-point *sums* do
//! not — `(a + b) + c != a + (b + c)` in general — so this histogram
//! deliberately stores no sum and derives no mean.
//!
//! The record path is built for the replay engine's per-call loop: bucket
//! counts live in a fixed inline array (no heap indirection), and the
//! preset bound sets resolve through a precomputed [`BucketLut`] so the
//! common-case bucket lookup is O(1) instead of a `partition_point` scan
//! per recorded value.

use serde::{Deserialize, Serialize};
use std::sync::LazyLock;

/// A named, fixed set of finite bucket upper bounds (strictly increasing).
/// The histogram adds one implicit overflow bucket above the last bound, so
/// `bounds.len() + 1` buckets partition the whole real line: bucket `i`
/// holds values in `(bounds[i-1], bounds[i]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Buckets {
    /// Stable identifier, recorded in snapshots next to the bounds.
    pub name: &'static str,
    /// Finite upper bounds, strictly increasing. At most [`MAX_BOUNDS`]
    /// entries; longer bound sets lose resolution past the cap (the tail
    /// folds into the overflow bucket).
    pub bounds: &'static [f64],
}

/// Largest supported number of finite bounds: bucket counts live inline in
/// `[u64; MAX_BOUNDS + 1]`, sized for the widest preset (LATENCY_US, 21
/// bounds) with headroom for custom test presets.
pub const MAX_BOUNDS: usize = 23;

/// One-way network latency / RTT, milliseconds.
pub const LATENCY_MS: Buckets = Buckets {
    name: "latency_ms",
    bounds: &[
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0, 750.0,
        1000.0, 1500.0, 2000.0, 3000.0, 5000.0,
    ],
};

/// In-process operation latency, microseconds. Tuned for a controller's
/// select hot path (target p99 in the tens of µs): sub-µs through 100 µs at
/// fine resolution, with a coarse tail up to 100 ms for socket round-trips
/// and scheduler stalls.
pub const LATENCY_US: Buckets = Buckets {
    name: "latency_us",
    bounds: &[
        0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 50.0, 75.0, 100.0, 200.0, 500.0, 1000.0,
        2000.0, 5000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
    ],
};

/// MOS difference between a relayed and the direct path (positive = relaying
/// helped). Symmetric around zero; MOS lives on [1, 4.5] so ±2 covers it.
pub const MOS_DELTA: Buckets = Buckets {
    name: "mos_delta",
    bounds: &[
        -2.0, -1.0, -0.5, -0.2, -0.1, -0.05, -0.01, 0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0,
    ],
};

/// Width of a predictor confidence interval (`upper - lower`), in the units
/// of the predicted metric.
pub const CI_WIDTH: Buckets = Buckets {
    name: "ci_width",
    bounds: &[
        0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    ],
};

/// Bandit regret proxy: realized cost of the chosen arm minus the predicted
/// cost of the best arm (clamped at zero by the recorder).
pub const REGRET: Buckets = Buckets {
    name: "regret",
    bounds: &[
        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
    ],
};

/// Dimensionless fractions and percentages on [0, 100].
pub const FRACTION: Buckets = Buckets {
    name: "fraction",
    bounds: &[
        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 90.0, 100.0,
    ],
};

/// Number of cells in a [`BucketLut`]: one per value of the top 12 bits of
/// the monotone bit key (sign + the full 11-bit exponent), so each cell
/// covers exactly one sign/binade and at most a handful of bounds.
const LUT_CELLS: usize = 1 << 12;

/// Precomputed bucket lookup table for one bound set.
///
/// `f64` total order maps monotonically onto `u64` order via the classic
/// key transform (negative values bit-flipped, non-negative values get the
/// sign bit set). Indexing the top 12 key bits yields the sign + exponent
/// cell of the value; per cell the table stores the bucket range
/// `[lo, hi]` that the cell's values can fall into. Most cells contain no
/// bound, so `lo == hi` answers immediately; cells that straddle bounds
/// narrow to a short scan over `bounds[lo..hi]` using real float compares,
/// which keeps the result bit-for-bit identical to the full
/// `partition_point` scan (including the `-0.0 == 0.0` edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketLut {
    lo: [u8; LUT_CELLS],
    hi: [u8; LUT_CELLS],
}

/// Monotone bit key: `a <= b` (f64 total order) iff `key(a) <= key(b)`.
#[inline]
fn order_key(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`order_key`].
fn order_key_inv(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k ^ (1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

impl BucketLut {
    /// Builds the table for one bound set by scanning each cell's endpoint
    /// values with the reference `partition_point` implementation.
    fn build(bounds: &[f64]) -> BucketLut {
        debug_assert!(
            bounds.iter().all(|b| b.to_bits() != (-0.0f64).to_bits()),
            "a -0.0 bound would split a LUT cell boundary"
        );
        let scan = |v: f64| bounds.partition_point(|b| *b < v);
        let mut lo = [0u8; LUT_CELLS];
        let mut hi = [0u8; LUT_CELLS];
        for (cell, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            let c = cell as u64;
            // The first and last cells contain the non-finite bit patterns
            // (±inf, NaN payloads); leave them on the full-scan path so the
            // NaN result matches `partition_point` exactly.
            if cell == 0 || cell == LUT_CELLS - 1 {
                *l = 0;
                *h = bounds.len().min(MAX_BOUNDS) as u8;
                continue;
            }
            // Within a cell all values share a sign, so key order equals
            // float order and the cell's bucket range is spanned by its
            // smallest and largest values.
            let first = order_key_inv(c << 52);
            let last = order_key_inv((c << 52) | 0x000F_FFFF_FFFF_FFFF);
            *l = scan(first).min(MAX_BOUNDS) as u8;
            *h = scan(last).min(MAX_BOUNDS) as u8;
        }
        BucketLut { lo, hi }
    }

    /// O(1)-amortized bucket lookup; exact for every `f64` including ±inf
    /// and NaN (which fall through to the narrowed scan).
    #[inline]
    pub fn bucket_of(&self, bounds: &[f64], v: f64) -> usize {
        let cell = (order_key(v) >> 52) as usize;
        let lo = usize::from(self.lo[cell]);
        let hi = usize::from(self.hi[cell]);
        if lo == hi {
            return lo;
        }
        // Narrowed scan with real float compares: `bounds[..lo]` are all
        // `< v` and `bounds[hi..]` are all `>= v` by construction, so only
        // the straddled range needs checking.
        let mut idx = lo;
        while idx < hi && bounds[idx] < v {
            idx += 1;
        }
        idx
    }
}

static LATENCY_MS_LUT: LazyLock<BucketLut> = LazyLock::new(|| BucketLut::build(LATENCY_MS.bounds));
static LATENCY_US_LUT: LazyLock<BucketLut> = LazyLock::new(|| BucketLut::build(LATENCY_US.bounds));
static MOS_DELTA_LUT: LazyLock<BucketLut> = LazyLock::new(|| BucketLut::build(MOS_DELTA.bounds));
static CI_WIDTH_LUT: LazyLock<BucketLut> = LazyLock::new(|| BucketLut::build(CI_WIDTH.bounds));
static REGRET_LUT: LazyLock<BucketLut> = LazyLock::new(|| BucketLut::build(REGRET.bounds));
static FRACTION_LUT: LazyLock<BucketLut> = LazyLock::new(|| BucketLut::build(FRACTION.bounds));

/// Resolves the precomputed LUT for a preset bound set, `None` for custom
/// bounds (which keep the scan path). Matched by preset name with the
/// bounds double-checked, so a shadowed name cannot misbucket.
fn lut_for(buckets: &Buckets) -> Option<&'static BucketLut> {
    let (preset, lut): (&Buckets, &'static LazyLock<BucketLut>) = match buckets.name {
        "latency_ms" => (&LATENCY_MS, &LATENCY_MS_LUT),
        "latency_us" => (&LATENCY_US, &LATENCY_US_LUT),
        "mos_delta" => (&MOS_DELTA, &MOS_DELTA_LUT),
        "ci_width" => (&CI_WIDTH, &CI_WIDTH_LUT),
        "regret" => (&REGRET, &REGRET_LUT),
        "fraction" => (&FRACTION, &FRACTION_LUT),
        _ => return None,
    };
    (buckets.bounds == preset.bounds).then(|| &**lut)
}

impl Buckets {
    /// The bucket index `v` falls into: the first bucket whose upper bound is
    /// `>= v`, or the overflow bucket. Total over all finite `f64` and
    /// monotone: `v1 <= v2` implies `bucket_of(v1) <= bucket_of(v2)`.
    /// Preset bound sets resolve through their precomputed [`BucketLut`];
    /// custom bounds fall back to [`Buckets::bucket_of_scan`].
    pub fn bucket_of(&self, v: f64) -> usize {
        match lut_for(self) {
            Some(lut) => lut.bucket_of(self.bounds, v),
            None => self.bucket_of_scan(v),
        }
    }

    /// Reference implementation: a binary-search scan over the bounds. The
    /// LUT path must agree with this for every `f64` (property-tested in
    /// `tests/hist_props.rs`).
    pub fn bucket_of_scan(&self, v: f64) -> usize {
        self.bounds.partition_point(|b| *b < v)
    }

    /// The precomputed LUT for this bound set, if it is one of the presets.
    pub fn lut(&self) -> Option<&'static BucketLut> {
        lut_for(self)
    }

    /// Number of buckets (`bounds + 1` overflow), clamped to the inline
    /// capacity.
    fn n_buckets(&self) -> usize {
        self.bounds.len().min(MAX_BOUNDS) + 1
    }
}

/// A fixed-bucket histogram: inline `u64` bucket counts plus exact extremes
/// and a conservation counter for rejected non-finite values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Buckets,
    /// Resolved once at construction so the record path never re-matches
    /// the preset name.
    lut: Option<&'static BucketLut>,
    counts: [u64; MAX_BOUNDS + 1],
    n_buckets: usize,
    count: u64,
    dropped_nonfinite: u64,
    min: f64,
    max: f64,
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        // `lut` is derived from `buckets`; comparing it would be redundant.
        self.buckets == other.buckets
            && self.counts[..self.n_buckets] == other.counts[..other.n_buckets]
            && self.count == other.count
            && self.dropped_nonfinite == other.dropped_nonfinite
            && self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
    }
}

impl Histogram {
    /// An empty histogram over the given bucket preset.
    pub fn new(buckets: Buckets) -> Histogram {
        debug_assert!(
            buckets.bounds.len() <= MAX_BOUNDS,
            "bucket preset {} exceeds the inline capacity ({} bounds > {MAX_BOUNDS})",
            buckets.name,
            buckets.bounds.len()
        );
        Histogram {
            buckets,
            lut: lut_for(&buckets),
            counts: [0; MAX_BOUNDS + 1],
            n_buckets: buckets.n_buckets(),
            count: 0,
            dropped_nonfinite: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value. Non-finite values carry no information a bucket
    /// could hold and would poison the deterministic extremes, so they are
    /// rejected — but *counted* in [`Histogram::dropped_nonfinite`] so
    /// recorded-vs-offered totals stay auditable.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped_nonfinite += 1;
            return;
        }
        let idx = match self.lut {
            Some(lut) => lut.bucket_of(self.buckets.bounds, v),
            None => self.buckets.bucket_of_scan(v),
        };
        self.counts[idx.min(self.n_buckets - 1)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Pure `u64` adds plus `min`/`max`, so the
    /// operation is associative and commutative — any merge tree over the
    /// same recordings produces the same histogram. Merging histograms built
    /// over different bucket presets is a programming error; the mismatched
    /// operand's bucket counts are then folded into the overflow bucket so
    /// the total count stays conserved (and a debug build asserts).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 && other.dropped_nonfinite == 0 {
            return;
        }
        debug_assert_eq!(
            self.buckets.name, other.buckets.name,
            "merging histograms with different bucket presets"
        );
        if self.buckets.bounds == other.buckets.bounds {
            for (a, b) in self.counts[..self.n_buckets]
                .iter_mut()
                .zip(&other.counts[..other.n_buckets])
            {
                *a += *b;
            }
        } else {
            self.counts[self.n_buckets - 1] += other.count;
        }
        self.count += other.count;
        self.dropped_nonfinite += other.dropped_nonfinite;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded (finite) values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of offered values rejected for being non-finite (NaN, ±inf).
    /// `count + dropped_nonfinite` equals the number of `record` calls, and
    /// the sum is conserved across merges.
    pub fn dropped_nonfinite(&self) -> u64 {
        self.dropped_nonfinite
    }

    /// Exact smallest recorded value, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket preset this histogram records into.
    pub fn buckets(&self) -> Buckets {
        self.buckets
    }

    /// Raw bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts[..self.n_buckets]
    }

    /// A closed interval guaranteed to contain the `q`-quantile of the
    /// recorded sample (the rank-`ceil(q·n)` order statistic), or `None` on
    /// an empty histogram. The interval is the containing bucket's span
    /// clamped to the exact extremes, so it degrades gracefully to a point
    /// at the tails.
    pub fn quantile_bracket(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut idx = self.n_buckets - 1;
        for (i, &c) in self.counts().iter().enumerate() {
            seen += c;
            if seen >= rank {
                idx = i;
                break;
            }
        }
        let lo = if idx == 0 {
            f64::NEG_INFINITY
        } else {
            self.buckets.bounds[idx - 1]
        };
        let hi = if idx < self.buckets.bounds.len() {
            self.buckets.bounds[idx]
        } else {
            f64::INFINITY
        };
        Some((lo.max(self.min), hi.min(self.max)))
    }
}

/// Serializable form of a [`Histogram`] inside a snapshot: bounds are
/// inlined so consumers need no preset table. `min`/`max` are `0` when
/// `count == 0` (the non-finite sentinels do not survive JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name (snapshot key).
    pub name: String,
    /// Bucket preset identifier.
    pub buckets: String,
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one more entry than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Offered values rejected as non-finite (`count + dropped_nonfinite`
    /// = offered). Defaults to 0 when absent, so snapshots written before
    /// the counter existed still deserialize.
    #[serde(default)]
    pub dropped_nonfinite: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min: f64,
    /// Exact largest recorded value (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    pub(crate) fn of(name: &str, h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            buckets: h.buckets.name.to_string(),
            bounds: h.buckets.bounds[..h.n_buckets - 1].to_vec(),
            counts: h.counts().to_vec(),
            count: h.count,
            dropped_nonfinite: h.dropped_nonfinite,
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_edges() {
        let b = Buckets {
            name: "t",
            bounds: &[1.0, 2.0, 5.0],
        };
        assert_eq!(b.bucket_of(-1e300), 0);
        assert_eq!(b.bucket_of(0.0), 0);
        assert_eq!(b.bucket_of(1.0), 0, "bounds are inclusive upper edges");
        assert_eq!(b.bucket_of(1.0 + 1e-9), 1);
        assert_eq!(b.bucket_of(5.0), 2);
        assert_eq!(b.bucket_of(5.1), 3, "overflow bucket");
    }

    #[test]
    fn presets_resolve_a_lut_and_custom_bounds_do_not() {
        for b in [
            LATENCY_MS, LATENCY_US, MOS_DELTA, CI_WIDTH, REGRET, FRACTION,
        ] {
            assert!(b.lut().is_some(), "{} should have a LUT", b.name);
        }
        let custom = Buckets {
            name: "t",
            bounds: &[1.0, 2.0],
        };
        assert!(custom.lut().is_none());
        // A shadowed preset name with different bounds must not borrow the
        // preset's LUT.
        let shadow = Buckets {
            name: "latency_ms",
            bounds: &[1.0, 2.0],
        };
        assert!(shadow.lut().is_none());
        assert_eq!(shadow.bucket_of(1.5), 1);
    }

    #[test]
    fn lut_agrees_with_scan_on_edges_and_nonfinite() {
        for b in [
            LATENCY_MS, LATENCY_US, MOS_DELTA, CI_WIDTH, REGRET, FRACTION,
        ] {
            for &bound in b.bounds {
                for v in [
                    bound,
                    f64::from_bits(bound.to_bits().wrapping_sub(1)),
                    f64::from_bits(bound.to_bits().wrapping_add(1)),
                    -bound,
                ] {
                    assert_eq!(b.bucket_of(v), b.bucket_of_scan(v), "{} at {v:e}", b.name);
                }
            }
            for v in [
                0.0,
                -0.0,
                f64::MIN_POSITIVE,
                -f64::MIN_POSITIVE,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::MAX,
                f64::MIN,
            ] {
                assert_eq!(b.bucket_of(v), b.bucket_of_scan(v), "{} at {v:e}", b.name);
            }
        }
    }

    #[test]
    fn record_and_extremes() {
        let mut h = Histogram::new(LATENCY_MS);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        for v in [3.0, 80.0, 80.0, 10_000.0] {
            h.record(v);
        }
        h.record(f64::NAN); // rejected, but counted
        h.record(f64::INFINITY); // rejected, but counted
        assert_eq!(h.count(), 4);
        assert_eq!(h.dropped_nonfinite(), 2);
        assert_eq!(h.min(), Some(3.0));
        assert_eq!(h.max(), Some(10_000.0));
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        assert_eq!(h.counts()[LATENCY_MS.bounds.len()], 1, "overflow hit");
    }

    #[test]
    fn preset_bounds_are_strictly_increasing() {
        for b in [
            LATENCY_MS, LATENCY_US, MOS_DELTA, CI_WIDTH, REGRET, FRACTION,
        ] {
            assert!(!b.bounds.is_empty(), "{}", b.name);
            assert!(b.bounds.len() <= MAX_BOUNDS, "{}", b.name);
            for w in b.bounds.windows(2) {
                assert!(w[0] < w[1], "{}: {:?}", b.name, w);
            }
            assert!(b.bounds.iter().all(|x| x.is_finite()), "{}", b.name);
        }
    }

    #[test]
    fn quantile_bracket_brackets() {
        let mut h = Histogram::new(LATENCY_MS);
        let xs = [3.0, 7.0, 12.0, 40.0, 90.0, 90.0, 160.0];
        for &x in &xs {
            h.record(x);
        }
        // Median (rank 4 of 7) is 40.0; its bucket is (20, 50].
        let (lo, hi) = h.quantile_bracket(0.5).expect("non-empty");
        assert!(lo <= 40.0 && 40.0 <= hi, "bracket [{lo}, {hi}]");
        // Extremes are exact.
        assert_eq!(h.quantile_bracket(0.0), Some((3.0, 5.0)));
        let (_, hi) = h.quantile_bracket(1.0).expect("non-empty");
        assert_eq!(hi, 160.0);
    }

    #[test]
    fn merge_conserves_counts_and_extremes() {
        let mut a = Histogram::new(CI_WIDTH);
        let mut b = Histogram::new(CI_WIDTH);
        for v in [0.2, 3.0, 700.0] {
            a.record(v);
        }
        for v in [0.05, 60.0] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.min(), Some(0.05));
        assert_eq!(merged.max(), Some(700.0));
        // Commutes.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(merged, other);
        // Merging an empty histogram is a no-op.
        let before = merged.clone();
        merged.merge(&Histogram::new(CI_WIDTH));
        assert_eq!(merged, before);
    }

    #[test]
    fn merge_carries_dropped_nonfinite_even_from_otherwise_empty() {
        let mut a = Histogram::new(REGRET);
        a.record(1.0);
        let mut b = Histogram::new(REGRET);
        b.record(f64::NAN);
        assert_eq!(b.count(), 0);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 1);
        assert_eq!(merged.dropped_nonfinite(), 1, "drop count must merge");
        let snap = HistogramSnapshot::of("r", &merged);
        assert_eq!(snap.dropped_nonfinite, 1);
        assert_eq!(snap.count, 1);
    }
}
