//! Fixed-bucket histograms with a merge algebra safe for deterministic
//! parallel recording.
//!
//! The deterministic core of the observability layer may only contain
//! aggregates whose merge is associative *and* commutative in exact
//! arithmetic, so that merging per-worker sinks yields byte-identical
//! results for every worker count and shard assignment. Bucket counts
//! (`u64` adds) and exact running extremes (`f64::min`/`max` select one of
//! the recorded values, they never round) qualify; floating-point *sums* do
//! not — `(a + b) + c != a + (b + c)` in general — so this histogram
//! deliberately stores no sum and derives no mean.

use serde::{Deserialize, Serialize};

/// A named, fixed set of finite bucket upper bounds (strictly increasing).
/// The histogram adds one implicit overflow bucket above the last bound, so
/// `bounds.len() + 1` buckets partition the whole real line: bucket `i`
/// holds values in `(bounds[i-1], bounds[i]]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Buckets {
    /// Stable identifier, recorded in snapshots next to the bounds.
    pub name: &'static str,
    /// Finite upper bounds, strictly increasing.
    pub bounds: &'static [f64],
}

/// One-way network latency / RTT, milliseconds.
pub const LATENCY_MS: Buckets = Buckets {
    name: "latency_ms",
    bounds: &[
        1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 75.0, 100.0, 150.0, 200.0, 300.0, 400.0, 500.0, 750.0,
        1000.0, 1500.0, 2000.0, 3000.0, 5000.0,
    ],
};

/// MOS difference between a relayed and the direct path (positive = relaying
/// helped). Symmetric around zero; MOS lives on [1, 4.5] so ±2 covers it.
pub const MOS_DELTA: Buckets = Buckets {
    name: "mos_delta",
    bounds: &[
        -2.0, -1.0, -0.5, -0.2, -0.1, -0.05, -0.01, 0.0, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0,
    ],
};

/// Width of a predictor confidence interval (`upper - lower`), in the units
/// of the predicted metric.
pub const CI_WIDTH: Buckets = Buckets {
    name: "ci_width",
    bounds: &[
        0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    ],
};

/// Bandit regret proxy: realized cost of the chosen arm minus the predicted
/// cost of the best arm (clamped at zero by the recorder).
pub const REGRET: Buckets = Buckets {
    name: "regret",
    bounds: &[
        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
    ],
};

/// Dimensionless fractions and percentages on [0, 100].
pub const FRACTION: Buckets = Buckets {
    name: "fraction",
    bounds: &[
        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0, 75.0, 90.0, 100.0,
    ],
};

impl Buckets {
    /// The bucket index `v` falls into: the first bucket whose upper bound is
    /// `>= v`, or the overflow bucket. Total over all finite `f64` and
    /// monotone: `v1 <= v2` implies `bucket_of(v1) <= bucket_of(v2)`.
    pub fn bucket_of(&self, v: f64) -> usize {
        self.bounds.partition_point(|b| *b < v)
    }
}

/// A fixed-bucket histogram: `u64` bucket counts plus exact extremes.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Buckets,
    counts: Vec<u64>,
    count: u64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over the given bucket preset.
    pub fn new(buckets: Buckets) -> Histogram {
        Histogram {
            buckets,
            counts: vec![0; buckets.bounds.len() + 1],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one value. Non-finite values are ignored: they carry no
    /// information a bucket could hold, and letting NaN reach `min`/`max`
    /// would poison the deterministic extremes.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[self.buckets.bucket_of(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self`. Pure `u64` adds plus `min`/`max`, so the
    /// operation is associative and commutative — any merge tree over the
    /// same recordings produces the same histogram. Merging histograms built
    /// over different bucket presets is a programming error; the mismatched
    /// operand's bucket counts are then folded into the overflow bucket so
    /// the total count stays conserved (and a debug build asserts).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        debug_assert_eq!(
            self.buckets.name, other.buckets.name,
            "merging histograms with different bucket presets"
        );
        if self.buckets.bounds == other.buckets.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += *b;
            }
        } else if let Some(last) = self.counts.last_mut() {
            *last += other.count;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest recorded value, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest recorded value, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket preset this histogram records into.
    pub fn buckets(&self) -> Buckets {
        self.buckets
    }

    /// Raw bucket counts (`bounds.len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// A closed interval guaranteed to contain the `q`-quantile of the
    /// recorded sample (the rank-`ceil(q·n)` order statistic), or `None` on
    /// an empty histogram. The interval is the containing bucket's span
    /// clamped to the exact extremes, so it degrades gracefully to a point
    /// at the tails.
    pub fn quantile_bracket(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut idx = self.counts.len() - 1;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                idx = i;
                break;
            }
        }
        let lo = if idx == 0 {
            f64::NEG_INFINITY
        } else {
            self.buckets.bounds[idx - 1]
        };
        let hi = if idx < self.buckets.bounds.len() {
            self.buckets.bounds[idx]
        } else {
            f64::INFINITY
        };
        Some((lo.max(self.min), hi.min(self.max)))
    }
}

/// Serializable form of a [`Histogram`] inside a snapshot: bounds are
/// inlined so consumers need no preset table. `min`/`max` are `0` when
/// `count == 0` (the non-finite sentinels do not survive JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name (snapshot key).
    pub name: String,
    /// Bucket preset identifier.
    pub buckets: String,
    /// Finite bucket upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one more entry than `bounds` (overflow last).
    pub counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Exact smallest recorded value (0 when empty).
    pub min: f64,
    /// Exact largest recorded value (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    pub(crate) fn of(name: &str, h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            buckets: h.buckets.name.to_string(),
            bounds: h.buckets.bounds.to_vec(),
            counts: h.counts.clone(),
            count: h.count,
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_edges() {
        let b = Buckets {
            name: "t",
            bounds: &[1.0, 2.0, 5.0],
        };
        assert_eq!(b.bucket_of(-1e300), 0);
        assert_eq!(b.bucket_of(0.0), 0);
        assert_eq!(b.bucket_of(1.0), 0, "bounds are inclusive upper edges");
        assert_eq!(b.bucket_of(1.0 + 1e-9), 1);
        assert_eq!(b.bucket_of(5.0), 2);
        assert_eq!(b.bucket_of(5.1), 3, "overflow bucket");
    }

    #[test]
    fn record_and_extremes() {
        let mut h = Histogram::new(LATENCY_MS);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        for v in [3.0, 80.0, 80.0, 10_000.0] {
            h.record(v);
        }
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(3.0));
        assert_eq!(h.max(), Some(10_000.0));
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
        assert_eq!(h.counts()[LATENCY_MS.bounds.len()], 1, "overflow hit");
    }

    #[test]
    fn preset_bounds_are_strictly_increasing() {
        for b in [LATENCY_MS, MOS_DELTA, CI_WIDTH, REGRET, FRACTION] {
            assert!(!b.bounds.is_empty(), "{}", b.name);
            for w in b.bounds.windows(2) {
                assert!(w[0] < w[1], "{}: {:?}", b.name, w);
            }
            assert!(b.bounds.iter().all(|x| x.is_finite()), "{}", b.name);
        }
    }

    #[test]
    fn quantile_bracket_brackets() {
        let mut h = Histogram::new(LATENCY_MS);
        let xs = [3.0, 7.0, 12.0, 40.0, 90.0, 90.0, 160.0];
        for &x in &xs {
            h.record(x);
        }
        // Median (rank 4 of 7) is 40.0; its bucket is (20, 50].
        let (lo, hi) = h.quantile_bracket(0.5).expect("non-empty");
        assert!(lo <= 40.0 && 40.0 <= hi, "bracket [{lo}, {hi}]");
        // Extremes are exact.
        assert_eq!(h.quantile_bracket(0.0), Some((3.0, 5.0)));
        let (_, hi) = h.quantile_bracket(1.0).expect("non-empty");
        assert_eq!(hi, 160.0);
    }

    #[test]
    fn merge_conserves_counts_and_extremes() {
        let mut a = Histogram::new(CI_WIDTH);
        let mut b = Histogram::new(CI_WIDTH);
        for v in [0.2, 3.0, 700.0] {
            a.record(v);
        }
        for v in [0.05, 60.0] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.min(), Some(0.05));
        assert_eq!(merged.max(), Some(700.0));
        // Commutes.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(merged, other);
        // Merging an empty histogram is a no-op.
        let before = merged.clone();
        merged.merge(&Histogram::new(CI_WIDTH));
        assert_eq!(merged, before);
    }
}
