//! The sanctioned wall-clock facade.
//!
//! Hot-path crates must not read `Instant::now()` directly — wall-clock
//! reads are inherently nondeterministic, and scattering them makes it
//! impossible to audit which results depend on time. The via-audit
//! `raw-timing` lint enforces this; [`Stopwatch`] is the one blessed way
//! to measure elapsed time, and everything it measures lands in the
//! timing layer that serialized snapshots exclude.

use std::time::Instant;

/// A started (or deliberately inert) wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts a stopwatch reading the real clock.
    pub fn started() -> Stopwatch {
        // The single sanctioned wall-clock read: everything it feeds stays
        // in the nondeterministic timing layer.
        Stopwatch(Some(Instant::now())) // via-audit: allow(nondeterminism)
    }

    /// A stopwatch that never ran; `elapsed_ms` reports 0. Lets callers
    /// thread one code path through timed and untimed configurations.
    pub fn disabled() -> Stopwatch {
        Stopwatch(None)
    }

    /// Milliseconds since the stopwatch started (0 when disabled).
    pub fn elapsed_ms(&self) -> f64 {
        self.0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stopwatch_reads_zero() {
        let s = Stopwatch::disabled();
        assert_eq!(s.elapsed_ms(), 0.0);
    }

    #[test]
    fn started_stopwatch_is_monotone() {
        let s = Stopwatch::started();
        let a = s.elapsed_ms();
        let b = s.elapsed_ms();
        assert!(a >= 0.0 && b >= a);
    }
}
