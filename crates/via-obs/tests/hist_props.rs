//! Property tests for the via-obs histogram algebra.
//!
//! The deterministic-core contract rests on four algebraic facts, each
//! checked here over randomized samples and partitions:
//!
//! 1. merge is associative and commutative,
//! 2. a merged histogram's count equals the sum of its parts,
//! 3. bucket assignment is total over finite values and monotone,
//! 4. quantile estimates from merged histograms bracket the true sample
//!    quantile.

use proptest::prelude::*;
use via_obs::{Buckets, Histogram, CI_WIDTH, FRACTION, LATENCY_MS, LATENCY_US, MOS_DELTA, REGRET};

const PRESETS: [Buckets; 6] = [
    LATENCY_MS, LATENCY_US, MOS_DELTA, CI_WIDTH, REGRET, FRACTION,
];

fn hist_of(buckets: Buckets, xs: &[f64]) -> Histogram {
    let mut h = Histogram::new(buckets);
    for &x in xs {
        h.record(x);
    }
    h
}

/// The rank-`ceil(q·n)` order statistic — the definition
/// `Histogram::quantile_bracket` promises to bracket.
fn true_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Spreads a unit draw across ~24 orders of magnitude in both signs, so the
/// totality property sees values far outside every preset's bounds.
fn stretch(unit: f64, exp: i32) -> f64 {
    (unit - 0.5) * 2.0 * 10f64.powi(exp - 12)
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(-50.0f64..6000.0, 0..80),
        b in prop::collection::vec(-50.0f64..6000.0, 0..80),
        c in prop::collection::vec(-50.0f64..6000.0, 0..80),
    ) {
        let (ha, hb, hc) = (
            hist_of(LATENCY_MS, &a),
            hist_of(LATENCY_MS, &b),
            hist_of(LATENCY_MS, &c),
        );

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // The empty histogram is the identity.
        let mut with_empty = ha.clone();
        with_empty.merge(&Histogram::new(LATENCY_MS));
        prop_assert_eq!(&with_empty, &ha);
    }

    #[test]
    fn merged_count_is_sum_of_parts(
        xs in prop::collection::vec(-5.0f64..5.0, 1..200),
        cuts in prop::collection::vec(0usize..200, 0..4),
    ) {
        // Split xs into contiguous parts at random cut points and merge the
        // per-part histograms back together.
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (xs.len() + 1)).collect();
        cuts.push(0);
        cuts.push(xs.len());
        cuts.sort_unstable();

        let mut merged = Histogram::new(MOS_DELTA);
        let mut part_sum = 0u64;
        for w in cuts.windows(2) {
            let part = hist_of(MOS_DELTA, &xs[w[0]..w[1]]);
            part_sum += part.count();
            merged.merge(&part);
        }
        prop_assert_eq!(part_sum, xs.len() as u64);
        prop_assert_eq!(merged.count(), xs.len() as u64);
        // Per-bucket totals are conserved too: merging the parts equals
        // recording the whole sample into one histogram.
        let whole = hist_of(MOS_DELTA, &xs);
        prop_assert_eq!(&merged, &whole);
    }

    #[test]
    fn bucket_assignment_is_total_and_monotone(
        u1 in 0.0f64..1.0, e1 in 0i32..25,
        u2 in 0.0f64..1.0, e2 in 0i32..25,
    ) {
        let mut v1 = stretch(u1, e1);
        let mut v2 = stretch(u2, e2);
        if v1 > v2 {
            std::mem::swap(&mut v1, &mut v2);
        }
        for b in [LATENCY_MS, MOS_DELTA, CI_WIDTH] {
            let (i1, i2) = (b.bucket_of(v1), b.bucket_of(v2));
            // Total: every finite value lands in a real bucket index.
            prop_assert!(i1 <= b.bounds.len());
            prop_assert!(i2 <= b.bounds.len());
            // Monotone: ordering of values implies ordering of buckets.
            prop_assert!(i1 <= i2, "{}: bucket_of({}) = {} > bucket_of({}) = {}",
                b.name, v1, i1, v2, i2);
            // Recording any finite value must land in the bucket counts.
            let h = hist_of(b, &[v1, v2]);
            prop_assert_eq!(h.count(), 2);
            prop_assert_eq!(h.counts().iter().sum::<u64>(), 2);
        }
    }

    #[test]
    fn lut_bucket_of_agrees_with_partition_point_everywhere(bits in any::<u64>()) {
        // Arbitrary bit patterns cover the full f64 space: every sign,
        // exponent (subnormals through ±inf), and NaN payload.
        let v = f64::from_bits(bits);
        for b in PRESETS {
            prop_assert_eq!(
                b.bucket_of(v),
                b.bucket_of_scan(v),
                "{} at {:e} (bits {:#x})", b.name, v, bits
            );
        }
    }

    #[test]
    fn lut_bucket_of_agrees_at_bound_neighborhoods(
        which in 0usize..64,
        ulps in -2i64..3,
    ) {
        // The hard cases sit exactly on and one ulp around each bound,
        // where the LUT's narrowed scan must reproduce the `< v` strictness
        // bit-for-bit, plus the signed zeros and infinities.
        for b in PRESETS {
            let bound = b.bounds[which % b.bounds.len()];
            let v = f64::from_bits((bound.to_bits() as i64 + ulps) as u64);
            for x in [v, -v, 0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY] {
                prop_assert_eq!(
                    b.bucket_of(x),
                    b.bucket_of_scan(x),
                    "{} at {:e}", b.name, x
                );
            }
        }
    }

    #[test]
    fn record_conserves_offered_values_including_nonfinite(
        // The marker swaps ~1 in 5 draws for a non-finite value.
        xs in prop::collection::vec((-100.0f64..6000.0, 0u32..5), 0..120),
        split in 0usize..120,
        kind in 0usize..3,
    ) {
        // Every offered value must land in exactly one of `count` or
        // `dropped_nonfinite`, and the split survives merging.
        let nonfinite = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][kind];
        let vals: Vec<f64> = xs
            .iter()
            .map(|&(v, marker)| if marker == 0 { nonfinite } else { v })
            .collect();
        let offered_finite = xs.iter().filter(|&&(_, m)| m != 0).count() as u64;
        let offered_dropped = xs.len() as u64 - offered_finite;

        let whole = hist_of(LATENCY_MS, &vals);
        prop_assert_eq!(whole.count(), offered_finite);
        prop_assert_eq!(whole.dropped_nonfinite(), offered_dropped);
        prop_assert_eq!(whole.count() + whole.dropped_nonfinite(), xs.len() as u64);

        let split = split.min(vals.len());
        let (a, b) = vals.split_at(split);
        let mut merged = hist_of(LATENCY_MS, a);
        merged.merge(&hist_of(LATENCY_MS, b));
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.dropped_nonfinite(), offered_dropped);
    }

    #[test]
    fn quantile_bracket_contains_true_quantile_after_merge(
        xs in prop::collection::vec(0.0f64..8000.0, 1..150),
        split in 0usize..150,
        q in 0.0f64..1.0,
    ) {
        let split = split.min(xs.len());
        let (a, b) = xs.split_at(split);
        let mut merged = hist_of(LATENCY_MS, a);
        merged.merge(&hist_of(LATENCY_MS, b));

        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        let truth = true_quantile(&sorted, q);

        let Some((lo, hi)) = merged.quantile_bracket(q) else {
            panic!("non-empty histogram returned no bracket");
        };
        prop_assert!(lo <= hi, "inverted bracket [{}, {}]", lo, hi);
        prop_assert!(
            lo <= truth && truth <= hi,
            "q={}: true quantile {} outside bracket [{}, {}]", q, truth, lo, hi
        );
    }
}
