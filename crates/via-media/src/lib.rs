//! RTP-layer packet simulation for the VIA reproduction.
//!
//! The paper's dataset stores only per-call *average* metrics; §2.2 validates
//! those averages against full packet traces of 70 K calls scored by a MOS
//! calculator. This crate provides the equivalent machinery:
//!
//! * [`packet`] — RFC 3550 RTP fixed headers, wire encode/decode (also used
//!   by the `via-testbed` probe streams).
//! * [`loss`] — Gilbert–Elliott bursty loss whose stationary rate matches a
//!   per-call average.
//! * [`delay`] — correlated (AR(1)) per-packet delay with transient spikes.
//! * [`jitter`] — the RFC 3550 interarrival-jitter estimator and an adaptive
//!   playout buffer with late-discard accounting.
//! * [`rtcp`] — RFC 3550 receiver reports: the feedback wire format the
//!   testbed's clients use to report metrics, with LSR/DLSR RTT arithmetic.
//! * [`call_sim`] — ties it together: average metrics → packet trace →
//!   receive pipeline → trace-based MOS.
//!
//! ```
//! use via_media::call_sim::{simulate_call, CallSimConfig};
//! use via_model::PathMetrics;
//!
//! let good = simulate_call(&PathMetrics::new(80.0, 0.2, 3.0), 30.0, &CallSimConfig::default(), 1);
//! let bad = simulate_call(&PathMetrics::new(600.0, 8.0, 40.0), 30.0, &CallSimConfig::default(), 1);
//! assert!(good.mos > bad.mos);
//! ```

#![warn(missing_docs)]

pub mod call_sim;
pub mod delay;
pub mod jitter;
pub mod loss;
pub mod merge;
pub mod packet;
pub mod rtcp;

pub use call_sim::{simulate_call, CallSimConfig, PacketTraceReport};
pub use jitter::{JitterBuffer, JitterEstimator};
pub use loss::GilbertElliott;
pub use merge::{
    receive, simulate_set, MergeConfig, MergeFailure, MergeMode, MergeReport, MergeScratch,
    PathArrivals, PathSpec,
};
pub use packet::{RtpPacket, RtpParseError, RTP_HEADER_LEN};
pub use rtcp::{ReceiverReport, ReportBlock, RtcpError};
