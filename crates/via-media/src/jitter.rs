//! RFC 3550 interarrival jitter estimation and the adaptive playout buffer.

use crate::packet::AUDIO_CLOCK_HZ;

/// The interarrival jitter estimator of RFC 3550 §6.4.1.
///
/// For packets `i−1, i` with RTP timestamps `S` and arrival times `R`
/// (both in media-clock units), the transit difference is
/// `D(i−1,i) = (R_i − R_{i−1}) − (S_i − S_{i−1})`, and the running estimate
/// is `J += (|D| − J) / 16`. This is exactly what a Skype-like client
/// reports, so the simulator's jitter numbers mean the same thing as the
/// paper's.
#[derive(Debug, Clone, Default)]
pub struct JitterEstimator {
    j_clock: f64,
    prev: Option<(f64, u32)>, // (arrival_clock, rtp_timestamp)
    samples: u64,
}

impl JitterEstimator {
    /// Fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one received packet: arrival time in milliseconds and RTP
    /// timestamp in media-clock units.
    ///
    /// The RTP timestamp is a modular u32 (it wraps every ~53.7 h at the
    /// 22.05 kHz audio clock), so the inter-packet timestamp delta is taken
    /// with wrapping arithmetic and reinterpreted as `i32` — a wrap between
    /// consecutive packets then yields the small signed step the sender
    /// actually took, not a ±2³² glitch that would saturate the estimate.
    pub fn on_packet(&mut self, arrival_ms: f64, rtp_timestamp: u32) {
        let arrival_clock = arrival_ms / 1_000.0 * f64::from(AUDIO_CLOCK_HZ);
        if let Some((prev_arrival, prev_ts)) = self.prev {
            let ts_step = f64::from(rtp_timestamp.wrapping_sub(prev_ts) as i32);
            let d = (arrival_clock - prev_arrival) - ts_step;
            self.j_clock += (d.abs() - self.j_clock) / 16.0;
            self.samples += 1;
        }
        self.prev = Some((arrival_clock, rtp_timestamp));
    }

    /// Current jitter estimate, in milliseconds.
    pub fn jitter_ms(&self) -> f64 {
        self.j_clock / f64::from(AUDIO_CLOCK_HZ) * 1_000.0
    }

    /// Number of interarrival samples folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// An adaptive playout (jitter) buffer.
///
/// The receiver delays playout by a margin proportional to the current
/// jitter estimate; packets arriving after their playout deadline are
/// discarded (late loss). The margin adapts slowly, as real implementations
/// do between talkspurts.
#[derive(Debug, Clone)]
pub struct JitterBuffer {
    /// Playout margin as a multiple of estimated jitter.
    pub depth_mult: f64,
    /// Minimum playout margin, ms.
    pub min_depth_ms: f64,
    /// Maximum playout margin, ms.
    pub max_depth_ms: f64,
    current_depth_ms: f64,
    late: u64,
    played: u64,
}

impl JitterBuffer {
    /// Standard adaptive buffer: margin = 2× jitter, clamped to 10–200 ms.
    pub fn new() -> Self {
        Self {
            depth_mult: 2.0,
            min_depth_ms: 10.0,
            max_depth_ms: 200.0,
            current_depth_ms: 10.0,
            late: 0,
            played: 0,
        }
    }

    /// Offers a packet that arrived `lateness_ms` after the *earliest*
    /// possible arrival (i.e. its queueing component: delay − min delay so
    /// far). Returns true if played, false if discarded as late. The margin
    /// adapts toward `depth_mult × jitter_estimate_ms`.
    pub fn offer(&mut self, lateness_ms: f64, jitter_estimate_ms: f64) -> bool {
        let target =
            (self.depth_mult * jitter_estimate_ms).clamp(self.min_depth_ms, self.max_depth_ms);
        // Slow adaptation: 5% per packet toward the target.
        self.current_depth_ms += 0.05 * (target - self.current_depth_ms);
        if lateness_ms <= self.current_depth_ms {
            self.played += 1;
            true
        } else {
            self.late += 1;
            false
        }
    }

    /// Current playout margin, ms.
    pub fn depth_ms(&self) -> f64 {
        self.current_depth_ms
    }

    /// Fraction of offered packets discarded as late.
    pub fn late_fraction(&self) -> f64 {
        let total = self.late + self.played;
        if total == 0 {
            0.0
        } else {
            self.late as f64 / total as f64
        }
    }

    /// Packets played.
    pub fn played(&self) -> u64 {
        self.played
    }

    /// Packets discarded late.
    pub fn late(&self) -> u64 {
        self.late
    }
}

impl Default for JitterBuffer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_spacing_yields_zero_jitter() {
        let mut j = JitterEstimator::new();
        for i in 0..100u32 {
            // 20 ms apart, timestamps 160 units apart: perfectly smooth.
            j.on_packet(f64::from(i) * 20.0, i * 160);
        }
        assert!(j.jitter_ms() < 1e-9);
        assert_eq!(j.samples(), 99);
    }

    #[test]
    fn alternating_offsets_converge_to_expected_jitter() {
        // Arrivals alternate ±5 ms around the nominal 20 ms grid: every
        // interarrival differs from nominal by 10 ms → J → 10 ms.
        let mut j = JitterEstimator::new();
        for i in 0..2_000u32 {
            let offset = if i % 2 == 0 { -5.0 } else { 5.0 };
            j.on_packet(f64::from(i) * 20.0 + offset, i * 160);
        }
        let est = j.jitter_ms();
        assert!((est - 10.0).abs() < 0.5, "estimate {est}");
    }

    #[test]
    fn timestamp_wraparound_is_not_jitter() {
        // A perfectly smooth stream whose RTP timestamps cross u32::MAX:
        // 20 ms apart, 160 ticks apart, starting just below the wrap point.
        // The broken (f64-subtraction) estimator saw one −2³² transit jump
        // here and pinned the estimate at ~hours of jitter.
        let mut j = JitterEstimator::new();
        let start = u32::MAX - 160 * 50;
        for i in 0..100u32 {
            j.on_packet(f64::from(i) * 20.0, start.wrapping_add(i * 160));
        }
        assert!(
            j.jitter_ms() < 1e-9,
            "wrap leaked into estimate: {}",
            j.jitter_ms()
        );
        assert_eq!(j.samples(), 99);
    }

    #[test]
    fn real_jitter_still_measured_across_the_wrap() {
        // The ±5 ms alternating pattern must read ~10 ms whether or not the
        // timestamps wrap mid-stream.
        let mut j = JitterEstimator::new();
        let start = u32::MAX - 160 * 1_000;
        for i in 0..2_000u32 {
            let offset = if i % 2 == 0 { -5.0 } else { 5.0 };
            j.on_packet(f64::from(i) * 20.0 + offset, start.wrapping_add(i * 160));
        }
        let est = j.jitter_ms();
        assert!((est - 10.0).abs() < 0.5, "estimate {est}");
    }

    #[test]
    fn estimator_ignores_media_gaps() {
        // A silence gap (timestamp jump matching the arrival gap) is not
        // jitter.
        let mut j = JitterEstimator::new();
        j.on_packet(0.0, 0);
        j.on_packet(20.0, 160);
        j.on_packet(1_020.0, 160 + 8_000); // 1 s silence, consistent
        assert!(j.jitter_ms() < 1e-9);
    }

    #[test]
    fn buffer_plays_on_time_packets() {
        let mut b = JitterBuffer::new();
        for _ in 0..100 {
            assert!(b.offer(2.0, 5.0));
        }
        assert_eq!(b.late(), 0);
        assert_eq!(b.played(), 100);
        assert_eq!(b.late_fraction(), 0.0);
    }

    #[test]
    fn buffer_discards_very_late_packets() {
        let mut b = JitterBuffer::new();
        // Let the margin settle around 2×5 = 10ms → min clamp 10ms.
        for _ in 0..200 {
            b.offer(1.0, 5.0);
        }
        assert!(!b.offer(500.0, 5.0), "a 500 ms-late packet must be dropped");
        assert!(b.late_fraction() > 0.0);
    }

    #[test]
    fn buffer_adapts_to_jitter() {
        let mut b = JitterBuffer::new();
        for _ in 0..500 {
            b.offer(0.0, 40.0);
        }
        assert!(
            (b.depth_ms() - 80.0).abs() < 5.0,
            "depth {} should approach 2×40",
            b.depth_ms()
        );
        // And clamps at the max.
        for _ in 0..500 {
            b.offer(0.0, 500.0);
        }
        assert!(b.depth_ms() <= 200.0 + 1e-9);
    }
}
