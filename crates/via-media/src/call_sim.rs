//! Packet-level simulation of one audio call.
//!
//! Given a path's average metrics (the per-call triple the paper's dataset
//! records), this module synthesizes the underlying packet trace — 20 ms
//! frames through a Gilbert–Elliott loss channel and a correlated delay
//! process — then runs the receive pipeline (RFC 3550 jitter estimator +
//! adaptive playout buffer) and scores the call with a *trace-based* MOS.
//!
//! This is the machinery behind the §2.2 validation: comparing quality
//! judgments made from full packet traces against the threshold labels on
//! per-call averages.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use via_model::metrics::PathMetrics;
use via_quality::EModelConfig;

use crate::delay::DelayModel;
use crate::jitter::{JitterBuffer, JitterEstimator};
use crate::loss::GilbertElliott;
use crate::packet::RtpPacket;

/// Frame interval for narrowband audio, ms.
pub const FRAME_MS: f64 = 20.0;
/// RTP timestamp increment per frame at 8 kHz.
pub const TS_PER_FRAME: u32 = 160;

/// Configuration of the packet-level call simulation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CallSimConfig {
    /// Mean loss-burst length, packets.
    pub burst_len: f64,
    /// AR(1) coefficient of the delay process.
    pub delay_rho: f64,
    /// E-model settings used for the trace MOS.
    pub emodel: EModelConfig,
}

impl Default for CallSimConfig {
    fn default() -> Self {
        Self {
            burst_len: 6.0,
            delay_rho: 0.5,
            emodel: EModelConfig::default(),
        }
    }
}

/// Result of simulating one call at packet level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketTraceReport {
    /// Packets sent.
    pub sent: u64,
    /// Packets lost in the network.
    pub lost_network: u64,
    /// Packets that arrived but missed their playout deadline.
    pub lost_late: u64,
    /// Mean one-way network delay of received packets, ms.
    pub mean_delay_ms: f64,
    /// Final RFC 3550 jitter estimate, ms.
    pub jitter_ms: f64,
    /// Final playout-buffer depth, ms.
    pub buffer_ms: f64,
    /// Trace-based MOS: E-model on *effective* loss (network + late) and
    /// *effective* delay (network + buffer), computed from the trace rather
    /// than from per-call averages.
    pub mos: f64,
}

impl PacketTraceReport {
    /// Total effective loss fraction (network + late discards).
    pub fn effective_loss(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        (self.lost_network + self.lost_late) as f64 / self.sent as f64
    }
}

/// Simulates one call of `duration_s` seconds over a path with the given
/// average metrics. Deterministic in `(metrics, duration, seed)`.
pub fn simulate_call(
    metrics: &PathMetrics,
    duration_s: f64,
    cfg: &CallSimConfig,
    seed: u64,
) -> PacketTraceReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_packets = ((duration_s * 1_000.0 / FRAME_MS).round() as u64).max(2);

    let one_way_ms = metrics.rtt_ms / 2.0;
    let mut loss = GilbertElliott::with_mean_loss(metrics.loss_pct, cfg.burst_len, &mut rng);
    let mut delay = DelayModel::for_target_jitter(one_way_ms, metrics.jitter_ms, cfg.delay_rho);

    let mut estimator = JitterEstimator::new();
    let mut buffer = JitterBuffer::new();

    let mut lost_network = 0u64;
    let mut delay_sum = 0.0f64;
    let mut received = 0u64;
    // Playout baseline: a leaky minimum tracker. It snaps down to new
    // minima and drifts upward slowly, so the playout clock re-syncs when
    // the path's base delay wanders (real receivers re-anchor between
    // talkspurts). Lateness is measured against this baseline.
    let mut baseline = f64::INFINITY;
    let baseline_drift_ms = 0.3; // per packet (15 ms/s of upward re-sync)
    let ssrc: u32 = rng.random();

    for i in 0..n_packets {
        let send_ms = i as f64 * FRAME_MS;
        let pkt = RtpPacket {
            payload_type: 0,
            marker: i == 0,
            seq: (i % 65_536) as u16,
            timestamp: (i as u32).wrapping_mul(TS_PER_FRAME),
            ssrc,
            payload_len: 160,
        };
        if loss.next_lost(&mut rng) {
            lost_network += 1;
            // The delay process still advances (the queue exists whether or
            // not this packet survived).
            let _ = delay.next_delay(&mut rng);
            continue;
        }
        let d = delay.next_delay(&mut rng);
        baseline = baseline.min(d);
        let arrival_ms = send_ms + d;
        estimator.on_packet(arrival_ms, pkt.timestamp);
        let lateness = d - baseline;
        buffer.offer(lateness, estimator.jitter_ms());
        baseline += baseline_drift_ms;
        delay_sum += d;
        received += 1;
    }

    let mean_delay_ms = if received > 0 {
        delay_sum / received as f64
    } else {
        one_way_ms
    };

    // Trace-based MOS: effective delay includes the playout buffer depth,
    // effective loss includes late discards. Rebuild the metric triple the
    // E-model expects, but from trace observables.
    let eff_loss_pct = 100.0 * (lost_network + buffer.late()) as f64 / n_packets as f64;
    let trace_metrics = PathMetrics::new(
        2.0 * mean_delay_ms + 2.0 * buffer.depth_ms(),
        eff_loss_pct,
        0.0, // jitter is already accounted for via buffer delay + late loss
    );
    let mos = cfg.emodel.mos(&trace_metrics);

    PacketTraceReport {
        sent: n_packets,
        lost_network,
        lost_late: buffer.late(),
        mean_delay_ms,
        jitter_ms: estimator.jitter_ms(),
        buffer_ms: buffer.depth_ms(),
        mos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_path() -> PathMetrics {
        PathMetrics::new(80.0, 0.1, 2.0)
    }

    fn bad_path() -> PathMetrics {
        PathMetrics::new(500.0, 6.0, 30.0)
    }

    #[test]
    fn report_is_deterministic() {
        let a = simulate_call(&clean_path(), 60.0, &CallSimConfig::default(), 7);
        let b = simulate_call(&clean_path(), 60.0, &CallSimConfig::default(), 7);
        assert_eq!(a, b);
        let c = simulate_call(&clean_path(), 60.0, &CallSimConfig::default(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn packet_counts_are_consistent() {
        let r = simulate_call(&clean_path(), 120.0, &CallSimConfig::default(), 1);
        assert_eq!(r.sent, 6_000);
        assert!(r.lost_network + r.lost_late < r.sent);
        assert!(r.effective_loss() < 0.05);
    }

    #[test]
    fn measured_loss_tracks_input() {
        let m = PathMetrics::new(100.0, 4.0, 3.0);
        let r = simulate_call(&m, 600.0, &CallSimConfig::default(), 2);
        let net_loss = 100.0 * r.lost_network as f64 / r.sent as f64;
        assert!(
            (net_loss - 4.0).abs() < 1.0,
            "network loss {net_loss}% vs target 4%"
        );
    }

    #[test]
    fn measured_jitter_tracks_input() {
        let m = PathMetrics::new(100.0, 0.0, 15.0);
        let r = simulate_call(&m, 600.0, &CallSimConfig::default(), 3);
        assert!(
            (r.jitter_ms - 15.0).abs() < 6.0,
            "RFC3550 jitter {} vs target 15",
            r.jitter_ms
        );
    }

    #[test]
    fn mean_delay_tracks_rtt() {
        let r = simulate_call(&clean_path(), 300.0, &CallSimConfig::default(), 4);
        assert!(
            (r.mean_delay_ms - 40.0).abs() < 5.0,
            "delay {}",
            r.mean_delay_ms
        );
    }

    #[test]
    fn good_calls_score_above_bad_calls() {
        let good = simulate_call(&clean_path(), 120.0, &CallSimConfig::default(), 5);
        let bad = simulate_call(&bad_path(), 120.0, &CallSimConfig::default(), 5);
        assert!(
            good.mos > bad.mos + 1.0,
            "good {} vs bad {}",
            good.mos,
            bad.mos
        );
        assert!(good.mos > 3.8);
        assert!(bad.mos < 2.5);
    }

    #[test]
    fn high_jitter_costs_quality_via_buffer_or_late_loss() {
        let calm = simulate_call(
            &PathMetrics::new(150.0, 0.5, 2.0),
            300.0,
            &CallSimConfig::default(),
            6,
        );
        let jittery = simulate_call(
            &PathMetrics::new(150.0, 0.5, 40.0),
            300.0,
            &CallSimConfig::default(),
            6,
        );
        assert!(jittery.mos < calm.mos, "jitter must reduce trace MOS");
        assert!(
            jittery.buffer_ms > calm.buffer_ms || jittery.lost_late > calm.lost_late,
            "jitter must show up as buffering or late loss"
        );
    }

    #[test]
    fn short_calls_still_produce_reports() {
        let r = simulate_call(&clean_path(), 0.01, &CallSimConfig::default(), 9);
        assert!(r.sent >= 2);
        assert!((1.0..=4.5).contains(&r.mos));
    }
}
