//! Receiver-side merge model for multipath calls.
//!
//! A multipath call sends its RTP stream over a small *set* of relay paths —
//! every packet on every path (duplicate) or round-robin across the set
//! (stripe). The receiver sees up to one copy per path per sequence number
//! and must dedup, reorder, and play out in order. This module models that
//! pipeline at packet level:
//!
//! 1. **Per-path synthesis** — each path runs its own Gilbert–Elliott loss
//!    chain and correlated delay process (the same machinery as
//!    [`crate::call_sim`]), seeded from the path's stable key so the draws
//!    are a property of the *path*, never of its position in the set.
//! 2. **Dedup and reorder** — the merged per-sequence arrival is the
//!    earliest copy across paths ([`receive`]); later copies are dedup
//!    drops. Taking the minimum makes the merge order-independent across
//!    path permutations and idempotent by construction.
//! 3. **In-order playout** — a packet cannot play before its predecessor,
//!    so the release time is `max(arrival, previous release)`: the
//!    head-of-line/reordering penalty. Effective delay, effective loss and
//!    RFC 3550 jitter over the *released* stream form the merged
//!    [`PathMetrics`] triple that feeds the existing MOS pipeline.
//! 4. **Failover** — a path can die mid-call (explicitly via
//!    [`PathSpec::dies_at_ms`] or drawn from [`MergeConfig::death_prob`]);
//!    packets it would carry after that instant are lost. A death with a
//!    surviving sibling is a failover (the call degrades but continues);
//!    when every path is dead before the call ends the report carries the
//!    same typed [`MergeFailure`] a singlepath relay death produces.

use rand::prelude::*;
use rand::rngs::StdRng;
use via_model::metrics::PathMetrics;
use via_model::seed;

use crate::call_sim::{FRAME_MS, TS_PER_FRAME};
use crate::delay::DelayModel;
use crate::jitter::JitterEstimator;
use crate::loss::GilbertElliott;

/// How the sender spreads the stream over the path set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Every packet rides every live path; the receiver keeps the first
    /// copy. Loss requires all copies lost.
    Duplicate,
    /// Packets round-robin across the live paths (by ascending path key, so
    /// the assignment is independent of input order); each packet rides
    /// exactly one path.
    Stripe,
}

/// One path's contribution to a multipath call.
#[derive(Debug, Clone, Copy)]
pub struct PathSpec {
    /// The path's per-call average metrics (RTT, loss, jitter).
    pub metrics: PathMetrics,
    /// Stable identity of the path (e.g. the relay option's stable code).
    /// Seeds the path's loss/delay streams and orders stripe assignment;
    /// keys within one set must be distinct.
    pub key: u64,
    /// Milliseconds into the call at which the path dies; packets sent at
    /// or after this instant on this path are lost. `f64::INFINITY` (the
    /// [`PathSpec::alive`] constructor) means the path outlives the call.
    pub dies_at_ms: f64,
}

impl PathSpec {
    /// A path that stays up for the whole call.
    pub fn alive(metrics: PathMetrics, key: u64) -> PathSpec {
        PathSpec {
            metrics,
            key,
            dies_at_ms: f64::INFINITY,
        }
    }
}

/// Tunables of the merge simulation.
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// Frames (20 ms each) synthesized per call. The replay hot path keeps
    /// this small; quality experiments can raise it.
    pub frames: usize,
    /// Mean loss-burst length, packets (Gilbert–Elliott bad-state sojourn).
    pub burst_len: f64,
    /// AR(1) coefficient of each path's delay process.
    pub delay_rho: f64,
    /// Probability that a path dies mid-call (drawn per path from the
    /// path's own stream; the death instant is uniform over the call).
    /// Explicit [`PathSpec::dies_at_ms`] combines with the draw via `min`.
    pub death_prob: f64,
}

impl Default for MergeConfig {
    fn default() -> Self {
        Self {
            frames: 32,
            burst_len: 6.0,
            delay_rho: 0.5,
            death_prob: 0.0,
        }
    }
}

/// Typed failure of a multipath call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeFailure {
    /// Every path in the set died before the call ended. With `k = 1` this
    /// is exactly a singlepath relay death, so the kind string is shared.
    AllPathsDown,
}

impl MergeFailure {
    /// Stable label for deterministic summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            MergeFailure::AllPathsDown => "all-paths-down",
        }
    }
}

/// Per-path arrival times for one call: `arrivals[s]` is the sequence-`s`
/// copy's arrival in ms, or `f64::INFINITY` when the copy was lost or the
/// path did not carry that sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct PathArrivals {
    /// The path's stable key (carried through for diagnostics).
    pub key: u64,
    /// Arrival time per sequence number; `INFINITY` = no copy.
    pub arrivals: Vec<f64>,
}

/// The deduped, per-sequence view the receiver plays from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergedStream {
    /// Earliest arrival per sequence across all paths; `INFINITY` = lost
    /// on every path that carried it.
    pub arrivals: Vec<f64>,
    /// Copies that reached the receiver, duplicates included.
    pub copies_received: u64,
    /// Sequences with at least one received copy.
    pub unique_received: u64,
}

impl MergedStream {
    /// Redundant copies the dedup stage discarded: every received copy
    /// beyond the first of its sequence.
    pub fn dedup_drops(&self) -> u64 {
        self.copies_received - self.unique_received
    }
}

/// Dedup-and-reorder stage: folds per-path arrivals into one per-sequence
/// stream, keeping the earliest copy of each sequence. Pure and
/// order-independent — any permutation of `paths` produces the same stream
/// — and idempotent: receiving a merged stream again changes nothing.
/// Sequence-space length is the longest path's; shorter paths simply carry
/// no copies of the tail.
pub fn receive(paths: &[PathArrivals], out: &mut MergedStream) {
    out.arrivals.clear();
    out.copies_received = 0;
    out.unique_received = 0;
    let n = paths.iter().map(|p| p.arrivals.len()).max().unwrap_or(0);
    out.arrivals.resize(n, f64::INFINITY);
    for p in paths {
        for (s, &a) in p.arrivals.iter().enumerate() {
            if a.is_finite() {
                out.copies_received += 1;
                if a < out.arrivals[s] {
                    out.arrivals[s] = a;
                }
            }
        }
    }
    out.unique_received = out.arrivals.iter().filter(|a| a.is_finite()).count() as u64;
}

/// Report of one merged multipath call.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeReport {
    /// Unique sequences sent (frames in the call).
    pub sent: u64,
    /// Copies that reached the receiver across all paths.
    pub copies_received: u64,
    /// Sequences with at least one received copy.
    pub unique_received: u64,
    /// Redundant copies discarded by dedup.
    pub dedup_drops: u64,
    /// Mean head-of-line/reordering wait added by in-order playout, ms.
    pub reorder_wait_ms: f64,
    /// Paths that died mid-call while a sibling survived.
    pub failovers: u64,
    /// True when a path died mid-call but the call completed on survivors.
    pub degraded: bool,
    /// Set when every path died before the call ended.
    pub failure: Option<MergeFailure>,
    /// The merged effective metric triple — two-way delay including the
    /// head-of-line wait, loss after redundancy, RFC 3550 jitter of the
    /// released stream — ready for the MOS pipeline.
    pub effective: PathMetrics,
}

/// Reusable buffers for [`simulate_set`]; one per worker keeps the hot
/// path allocation-free across calls.
#[derive(Debug, Default)]
pub struct MergeScratch {
    paths: Vec<PathArrivals>,
    stream: MergedStream,
    order: Vec<usize>,
    dies: Vec<f64>,
}

/// Simulates one multipath call over `specs` and merges it receiver-side.
/// Deterministic in `(specs, mode, cfg, call_seed)` and — because every
/// per-path draw comes from a stream derived from the path's own key —
/// invariant under permutations of `specs`.
pub fn simulate_set(
    specs: &[PathSpec],
    mode: MergeMode,
    cfg: &MergeConfig,
    call_seed: u64,
    scratch: &mut MergeScratch,
) -> MergeReport {
    let frames = cfg.frames.max(2);
    let duration_ms = frames as f64 * FRAME_MS;

    // Stripe assignment walks paths by ascending key so the carrier of a
    // sequence never depends on input order.
    scratch.order.clear();
    scratch.order.extend(0..specs.len());
    scratch
        .order
        .sort_by_key(|&p| specs.get(p).map_or(0, |s| s.key));

    // Death instants: the explicit spec value, min-combined with a drawn
    // death from the path's own stream.
    scratch.dies.clear();
    for spec in specs {
        let mut die = spec.dies_at_ms;
        if cfg.death_prob > 0.0 {
            let mut rng =
                StdRng::seed_from_u64(seed::derive_indexed(call_seed, "merge-death", spec.key));
            if rng.random::<f64>() < cfg.death_prob {
                die = die.min(rng.random::<f64>() * duration_ms);
            }
        }
        scratch.dies.push(die);
    }

    synthesize_paths(specs, mode, cfg, call_seed, frames, scratch);
    receive(&scratch.paths, &mut scratch.stream);

    // Failover accounting: a death strictly inside the call is a failover
    // when some sibling is still alive at that instant.
    let mut failovers = 0u64;
    let mut died_mid_call = 0usize;
    for (p, &die) in scratch.dies.iter().enumerate() {
        if die < duration_ms {
            died_mid_call += 1;
            let survivor = scratch
                .dies
                .iter()
                .enumerate()
                .any(|(q, &other)| q != p && other > die);
            if survivor {
                failovers += 1;
            }
        }
    }
    let all_down = !specs.is_empty() && died_mid_call == specs.len();
    let degraded = died_mid_call > 0 && !all_down;

    let mut report = playout(&scratch.stream, frames, specs);
    report.failovers = failovers;
    report.degraded = degraded;
    report.failure = all_down.then_some(MergeFailure::AllPathsDown);
    report
}

/// Synthesizes each path's per-sequence arrivals into `scratch.paths`.
/// Every path advances its loss and delay chains on every frame (the
/// network queue exists whether or not a packet rides it), so a path's
/// draw sequence depends only on its key — never on the carrier schedule.
fn synthesize_paths(
    specs: &[PathSpec],
    mode: MergeMode,
    cfg: &MergeConfig,
    call_seed: u64,
    frames: usize,
    scratch: &mut MergeScratch,
) {
    scratch.paths.clear();
    for (p, spec) in specs.iter().enumerate() {
        let mut rng =
            StdRng::seed_from_u64(seed::derive_indexed(call_seed, "merge-path", spec.key));
        let one_way = spec.metrics.rtt_ms / 2.0;
        let mut loss =
            GilbertElliott::with_mean_loss(spec.metrics.loss_pct, cfg.burst_len, &mut rng);
        let mut delay =
            DelayModel::for_target_jitter(one_way, spec.metrics.jitter_ms, cfg.delay_rho);
        let die = scratch.dies.get(p).copied().unwrap_or(f64::INFINITY);

        let mut arrivals = Vec::with_capacity(frames);
        for s in 0..frames {
            let send_ms = s as f64 * FRAME_MS;
            let lost = loss.next_lost(&mut rng);
            let d = delay.next_delay(&mut rng);
            let carried =
                send_ms < die && carries(specs, &scratch.order, &scratch.dies, mode, p, s);
            if carried && !lost {
                arrivals.push(send_ms + d);
            } else {
                arrivals.push(f64::INFINITY);
            }
        }
        scratch.paths.push(PathArrivals {
            key: spec.key,
            arrivals,
        });
    }
}

/// Whether path `p` carries sequence `s`: all live paths under duplicate,
/// the `s mod |live|`-th live path (in ascending key order) under stripe.
fn carries(
    specs: &[PathSpec],
    order: &[usize],
    dies: &[f64],
    mode: MergeMode,
    p: usize,
    s: usize,
) -> bool {
    match mode {
        MergeMode::Duplicate => true,
        MergeMode::Stripe => {
            let send_ms = s as f64 * FRAME_MS;
            let live = |q: &usize| dies.get(*q).copied().unwrap_or(f64::INFINITY) > send_ms;
            let alive = order.iter().filter(|q| live(q)).count();
            if alive == 0 {
                // No carrier left; charge the sequence to every dead path
                // equally (it is lost regardless).
                return specs.len() == 1 || p == order.first().copied().unwrap_or(0);
            }
            order
                .iter()
                .filter(|q| live(q))
                .nth(s % alive)
                .copied()
                .unwrap_or(usize::MAX)
                == p
        }
    }
}

/// Intermediate playout result (reused as the report skeleton).
fn playout(stream: &MergedStream, frames: usize, specs: &[PathSpec]) -> MergeReport {
    let mut estimator = JitterEstimator::new();
    let mut release = 0.0f64;
    let mut wait_sum = 0.0f64;
    let mut delay_sum = 0.0f64;
    let mut released = 0u64;
    let mut ts: u32 = 0;
    for (s, &arrival) in stream.arrivals.iter().enumerate() {
        if arrival.is_finite() {
            release = if arrival > release { arrival } else { release };
            let send_ms = s as f64 * FRAME_MS;
            wait_sum += release - arrival;
            delay_sum += release - send_ms;
            estimator.on_packet(release, ts);
            released += 1;
        }
        ts = ts.wrapping_add(TS_PER_FRAME);
    }

    let effective = if released > 0 {
        PathMetrics::new(
            2.0 * delay_sum / released as f64,
            100.0 * (frames as f64 - released as f64) / frames as f64,
            estimator.jitter_ms(),
        )
    } else {
        // Nothing arrived: loss saturates; report the set's best base RTT
        // (permutation-invariant) so the triple stays well-formed.
        let best_rtt = specs
            .iter()
            .map(|spec| spec.metrics.rtt_ms)
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);
        PathMetrics::new(best_rtt, 100.0, 0.0)
    };

    MergeReport {
        sent: frames as u64,
        copies_received: stream.copies_received,
        unique_received: stream.unique_received,
        dedup_drops: stream.dedup_drops(),
        reorder_wait_ms: if released > 0 {
            wait_sum / released as f64
        } else {
            0.0
        },
        failovers: 0,
        degraded: false,
        failure: None,
        effective,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> PathMetrics {
        PathMetrics::new(80.0, 0.5, 3.0)
    }

    fn lossy() -> PathMetrics {
        PathMetrics::new(120.0, 8.0, 10.0)
    }

    fn sim(specs: &[PathSpec], mode: MergeMode, cfg: &MergeConfig, seed: u64) -> MergeReport {
        let mut scratch = MergeScratch::default();
        simulate_set(specs, mode, cfg, seed, &mut scratch)
    }

    #[test]
    fn deterministic_and_permutation_invariant() {
        let cfg = MergeConfig {
            frames: 64,
            ..MergeConfig::default()
        };
        let a = PathSpec::alive(clean(), 11);
        let b = PathSpec::alive(lossy(), 22);
        let ab = sim(&[a, b], MergeMode::Duplicate, &cfg, 7);
        let ba = sim(&[b, a], MergeMode::Duplicate, &cfg, 7);
        assert_eq!(ab, ba, "duplicate merge must not depend on path order");
        let ab_s = sim(&[a, b], MergeMode::Stripe, &cfg, 7);
        let ba_s = sim(&[b, a], MergeMode::Stripe, &cfg, 7);
        assert_eq!(ab_s, ba_s, "stripe assignment is keyed, not positional");
        assert_eq!(ab, sim(&[a, b], MergeMode::Duplicate, &cfg, 7));
    }

    #[test]
    fn duplication_reduces_loss_and_drops_duplicates() {
        let cfg = MergeConfig {
            frames: 512,
            ..MergeConfig::default()
        };
        let a = PathSpec::alive(lossy(), 1);
        let b = PathSpec::alive(lossy(), 2);
        let single = sim(&[a], MergeMode::Duplicate, &cfg, 3);
        let dual = sim(&[a, b], MergeMode::Duplicate, &cfg, 3);
        assert!(
            dual.effective.loss_pct < single.effective.loss_pct,
            "2-path duplication must cut loss: {} vs {}",
            dual.effective.loss_pct,
            single.effective.loss_pct
        );
        assert!(dual.dedup_drops > 0, "duplicates must be deduped");
        assert_eq!(single.dedup_drops, 0, "k=1 has nothing to dedup");
    }

    #[test]
    fn stripe_sends_each_sequence_once() {
        let cfg = MergeConfig {
            frames: 100,
            ..MergeConfig::default()
        };
        let r = sim(
            &[PathSpec::alive(clean(), 1), PathSpec::alive(clean(), 2)],
            MergeMode::Stripe,
            &cfg,
            5,
        );
        assert_eq!(r.dedup_drops, 0, "striping never duplicates");
        assert!(r.unique_received as usize > 90);
    }

    #[test]
    fn mid_call_death_with_survivor_is_failover_not_failure() {
        let cfg = MergeConfig {
            frames: 100,
            ..MergeConfig::default()
        };
        let mut dying = PathSpec::alive(clean(), 1);
        dying.dies_at_ms = 500.0;
        let r = sim(
            &[dying, PathSpec::alive(clean(), 2)],
            MergeMode::Duplicate,
            &cfg,
            5,
        );
        assert_eq!(r.failovers, 1);
        assert!(r.degraded);
        assert_eq!(r.failure, None);
        assert!(r.unique_received > 90, "survivor carries the call");
    }

    #[test]
    fn all_paths_down_is_the_singlepath_death_failure() {
        let cfg = MergeConfig {
            frames: 50,
            ..MergeConfig::default()
        };
        let mut a = PathSpec::alive(clean(), 1);
        a.dies_at_ms = 100.0;
        let mut b = PathSpec::alive(clean(), 2);
        b.dies_at_ms = 300.0;
        let both = sim(&[a, b], MergeMode::Duplicate, &cfg, 5);
        let single = sim(&[a], MergeMode::Duplicate, &cfg, 5);
        assert_eq!(both.failure, Some(MergeFailure::AllPathsDown));
        assert_eq!(single.failure, Some(MergeFailure::AllPathsDown));
        assert_eq!(
            both.failure.map(|f| f.kind()),
            single.failure.map(|f| f.kind()),
            "k=2 total death must carry the singlepath death cause"
        );
    }

    #[test]
    fn reorder_wait_is_nonnegative_and_bounded_by_delay() {
        let cfg = MergeConfig {
            frames: 256,
            ..MergeConfig::default()
        };
        let r = sim(
            &[PathSpec::alive(clean(), 1), PathSpec::alive(lossy(), 2)],
            MergeMode::Stripe,
            &cfg,
            9,
        );
        assert!(r.reorder_wait_ms >= 0.0);
        assert!(r.effective.rtt_ms >= clean().rtt_ms * 0.2);
    }
}
