//! RTP packet headers (RFC 3550 §5.1): wire encoding and parsing.
//!
//! The media simulator and the testbed's probe streams both speak real RTP
//! fixed headers, so packet traces can be inspected with standard tooling and
//! the jitter arithmetic operates on the same fields a VoIP client uses
//! (sequence number, 8 kHz media timestamp).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// RTP protocol version (always 2).
pub const RTP_VERSION: u8 = 2;
/// Fixed header length in bytes (no CSRCs, no extensions).
pub const RTP_HEADER_LEN: usize = 12;
/// Media clock rate for narrowband audio, Hz.
pub const AUDIO_CLOCK_HZ: u32 = 8_000;

/// A parsed RTP fixed header plus payload length (payload bytes themselves
/// are irrelevant to network simulation and are not stored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtpPacket {
    /// Payload type (e.g. 0 = PCMU).
    pub payload_type: u8,
    /// Marker bit (start of talkspurt).
    pub marker: bool,
    /// Sequence number, wrapping u16.
    pub seq: u16,
    /// Media timestamp in clock units (8 kHz for audio).
    pub timestamp: u32,
    /// Synchronization source identifier.
    pub ssrc: u32,
    /// Length of the payload that followed the header.
    pub payload_len: usize,
}

/// Errors from parsing an RTP datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtpParseError {
    /// Fewer than 12 bytes.
    TooShort,
    /// Version field was not 2.
    BadVersion(u8),
    /// CSRC count or extension indicated a header longer than the datagram.
    Truncated,
}

impl std::fmt::Display for RtpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtpParseError::TooShort => write!(f, "datagram shorter than RTP header"),
            RtpParseError::BadVersion(v) => write!(f, "unsupported RTP version {v}"),
            RtpParseError::Truncated => write!(f, "RTP header fields exceed datagram"),
        }
    }
}

impl std::error::Error for RtpParseError {}

impl RtpPacket {
    /// Serializes the fixed header followed by `payload_len` zero bytes
    /// (payload content does not matter to the network path).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(RTP_HEADER_LEN + self.payload_len);
        let b0 = RTP_VERSION << 6; // no padding, no extension, zero CSRCs
        buf.put_u8(b0);
        let b1 = (u8::from(self.marker) << 7) | (self.payload_type & 0x7F);
        buf.put_u8(b1);
        buf.put_u16(self.seq);
        buf.put_u32(self.timestamp);
        buf.put_u32(self.ssrc);
        buf.put_bytes(0, self.payload_len);
        buf.freeze()
    }

    /// Parses a datagram into a header + payload length.
    pub fn decode(mut data: &[u8]) -> Result<RtpPacket, RtpParseError> {
        if data.len() < RTP_HEADER_LEN {
            return Err(RtpParseError::TooShort);
        }
        let b0 = data.get_u8();
        let version = b0 >> 6;
        if version != RTP_VERSION {
            return Err(RtpParseError::BadVersion(version));
        }
        let csrc_count = (b0 & 0x0F) as usize;
        let has_extension = b0 & 0x10 != 0;
        let b1 = data.get_u8();
        let marker = b1 & 0x80 != 0;
        let payload_type = b1 & 0x7F;
        let seq = data.get_u16();
        let timestamp = data.get_u32();
        let ssrc = data.get_u32();

        let mut header_extra = csrc_count * 4;
        if data.len() < header_extra {
            return Err(RtpParseError::Truncated);
        }
        data.advance(csrc_count * 4);
        if has_extension {
            if data.len() < 4 {
                return Err(RtpParseError::Truncated);
            }
            data.advance(2); // profile-specific id
            let ext_words = data.get_u16() as usize;
            if data.len() < ext_words * 4 {
                return Err(RtpParseError::Truncated);
            }
            data.advance(ext_words * 4);
            header_extra += 4 + ext_words * 4;
        }
        let _ = header_extra;
        Ok(RtpPacket {
            payload_type,
            marker,
            seq,
            timestamp,
            ssrc,
            payload_len: data.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> RtpPacket {
        RtpPacket {
            payload_type: 0,
            marker: true,
            seq: 0xABCD,
            timestamp: 123_456_789,
            ssrc: 0xDEAD_BEEF,
            payload_len: 160,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let wire = p.encode();
        assert_eq!(wire.len(), RTP_HEADER_LEN + 160);
        let back = RtpPacket::decode(&wire).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn wire_format_is_rfc3550() {
        let wire = sample().encode();
        assert_eq!(wire[0], 0b1000_0000, "V=2, P=0, X=0, CC=0");
        assert_eq!(wire[1], 0b1000_0000, "M=1, PT=0");
        assert_eq!(&wire[2..4], &[0xAB, 0xCD]);
        assert_eq!(&wire[8..12], &[0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn rejects_short_and_bad_version() {
        assert_eq!(RtpPacket::decode(&[0u8; 5]), Err(RtpParseError::TooShort));
        let mut wire = sample().encode().to_vec();
        wire[0] = 0b0100_0000; // version 1
        assert_eq!(RtpPacket::decode(&wire), Err(RtpParseError::BadVersion(1)));
    }

    #[test]
    fn skips_csrcs_and_extension() {
        // Hand-build a header with 2 CSRCs and a 1-word extension.
        let mut wire = Vec::new();
        wire.push((RTP_VERSION << 6) | 0x10 | 2); // X=1, CC=2
        wire.push(8); // PT=8
        wire.extend_from_slice(&100u16.to_be_bytes());
        wire.extend_from_slice(&1_000u32.to_be_bytes());
        wire.extend_from_slice(&42u32.to_be_bytes());
        wire.extend_from_slice(&[0; 8]); // 2 CSRCs
        wire.extend_from_slice(&0u16.to_be_bytes()); // ext id
        wire.extend_from_slice(&1u16.to_be_bytes()); // 1 word
        wire.extend_from_slice(&[0; 4]); // ext body
        wire.extend_from_slice(&[9; 20]); // payload
        let p = RtpPacket::decode(&wire).unwrap();
        assert_eq!(p.payload_type, 8);
        assert_eq!(p.seq, 100);
        assert_eq!(p.payload_len, 20);
    }

    #[test]
    fn truncated_extension_detected() {
        let mut wire = Vec::new();
        wire.push((RTP_VERSION << 6) | 0x10);
        wire.push(0);
        wire.extend_from_slice(&[0; 10]);
        wire.extend_from_slice(&0u16.to_be_bytes());
        wire.extend_from_slice(&100u16.to_be_bytes()); // claims 100 words
        assert_eq!(RtpPacket::decode(&wire), Err(RtpParseError::Truncated));
    }

    proptest! {
        #[test]
        fn roundtrip_any_header(pt in 0u8..128, marker in any::<bool>(), seq in any::<u16>(),
                                ts in any::<u32>(), ssrc in any::<u32>(), len in 0usize..500) {
            let p = RtpPacket { payload_type: pt, marker, seq, timestamp: ts, ssrc, payload_len: len };
            let back = RtpPacket::decode(&p.encode()).unwrap();
            prop_assert_eq!(back, p);
        }
    }
}
