//! Per-packet one-way delay process.
//!
//! Packets experience a base propagation/queueing delay plus a time-correlated
//! variation (queue depth changes slowly relative to the 20 ms packet
//! interval). The variation follows a discrete Ornstein–Uhlenbeck (AR(1))
//! process, plus occasional delay spikes — the "transient latency spikes" the
//! paper notes are invisible in per-call averages.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};

/// Correlated delay process for one direction of one call.
#[derive(Debug, Clone)]
pub struct DelayModel {
    /// Base one-way delay, ms.
    pub base_ms: f64,
    /// Standard deviation of the stationary delay variation, ms.
    pub sigma_ms: f64,
    /// AR(1) coefficient per packet (0 = white noise, →1 = slow drift).
    pub rho: f64,
    /// Per-packet probability of a delay spike.
    pub spike_prob: f64,
    /// Mean spike magnitude, ms.
    pub spike_ms: f64,
    state: f64,
}

impl DelayModel {
    /// Builds a delay process. `sigma_ms` is derived from a target RFC 3550
    /// jitter via [`DelayModel::for_target_jitter`] in most callers.
    pub fn new(base_ms: f64, sigma_ms: f64, rho: f64, spike_prob: f64, spike_ms: f64) -> Self {
        Self {
            base_ms: base_ms.max(0.0),
            sigma_ms: sigma_ms.max(0.0),
            rho: rho.clamp(0.0, 0.999),
            spike_prob: spike_prob.clamp(0.0, 1.0),
            spike_ms: spike_ms.max(0.0),
            state: 0.0,
        }
    }

    /// Builds a process whose RFC 3550 interarrival jitter estimate lands
    /// near `jitter_ms`.
    ///
    /// For an AR(1) process with stationary deviation σ and coefficient ρ,
    /// consecutive-difference deviations are σ·√(2(1−ρ)); the RFC 3550
    /// estimator converges to the mean |difference| ≈ 0.8·σ_diff for
    /// Gaussian variation. Inverting gives σ.
    pub fn for_target_jitter(base_ms: f64, jitter_ms: f64, rho: f64) -> Self {
        let sigma_diff = (jitter_ms / 0.8).max(0.0);
        let sigma = sigma_diff / (2.0 * (1.0 - rho.clamp(0.0, 0.999))).sqrt();
        Self::new(base_ms, sigma, rho, 0.004, 4.0 * jitter_ms.max(1.0))
    }

    /// One-way delay of the next packet, ms.
    pub fn next_delay(&mut self, rng: &mut StdRng) -> f64 {
        if self.sigma_ms > 0.0 {
            // `new` only fails on non-finite parameters; a finite positive
            // sigma_ms keeps this arm infallible.
            if let Ok(innovation) =
                Normal::new(0.0, self.sigma_ms * (1.0 - self.rho * self.rho).sqrt())
            {
                self.state = self.rho * self.state + innovation.sample(rng);
            }
        }
        let mut d = self.base_ms + self.state;
        if self.spike_prob > 0.0 && rng.random::<f64>() < self.spike_prob {
            d += self.spike_ms * (0.5 + rng.random::<f64>());
        }
        d.max(self.base_ms * 0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::stats::OnlineStats;

    #[test]
    fn mean_delay_near_base() {
        let mut m = DelayModel::new(50.0, 3.0, 0.9, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = OnlineStats::new();
        for _ in 0..50_000 {
            s.push(m.next_delay(&mut rng));
        }
        let mean = s.mean().unwrap();
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn delays_are_autocorrelated() {
        let mut m = DelayModel::new(50.0, 5.0, 0.95, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..20_000).map(|_| m.next_delay(&mut rng)).collect();
        let pairs: Vec<(f64, f64)> = xs.windows(2).map(|w| (w[0], w[1])).collect();
        let r = via_model::stats::pearson(&pairs).unwrap();
        assert!(r > 0.8, "lag-1 autocorrelation {r} too low for rho=0.95");
    }

    #[test]
    fn spikes_raise_the_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut no_spike = DelayModel::new(50.0, 2.0, 0.5, 0.0, 0.0);
        let mut spiky = DelayModel::new(50.0, 2.0, 0.5, 0.02, 100.0);
        let a: Vec<f64> = (0..20_000).map(|_| no_spike.next_delay(&mut rng)).collect();
        let b: Vec<f64> = (0..20_000).map(|_| spiky.next_delay(&mut rng)).collect();
        let p99a = via_model::stats::percentile(&a, 99.0).unwrap();
        let p99b = via_model::stats::percentile(&b, 99.0).unwrap();
        assert!(p99b > p99a + 20.0, "spikes invisible: {p99a} vs {p99b}");
    }

    #[test]
    fn delay_never_negative() {
        let mut m = DelayModel::new(5.0, 50.0, 0.0, 0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(m.next_delay(&mut rng) > 0.0);
        }
    }
}
