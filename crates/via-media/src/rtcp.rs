//! RTCP receiver reports (RFC 3550 §6.4): the wire format VoIP clients use
//! to feed network metrics back to their peers and — in VIA — to the
//! controller.
//!
//! The paper's clients "periodically push the network metrics derived from
//! their calls to the controller" (§3.1). A receiver report block carries
//! exactly the fields VIA needs: cumulative loss, the loss fraction since
//! the previous report, the highest sequence number received, interarrival
//! jitter (in media-clock units), and the LSR/DLSR timestamps from which the
//! sender computes RTT. This module implements the RR packet with one or
//! more report blocks, plus the RTT arithmetic.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// RTCP packet type for receiver reports.
pub const RTCP_PT_RR: u8 = 201;
/// Length of the RR header (version/count byte, PT, length, sender SSRC).
pub const RR_HEADER_LEN: usize = 8;
/// Length of one report block.
pub const REPORT_BLOCK_LEN: usize = 24;

/// One report block within a receiver report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportBlock {
    /// SSRC of the stream this block reports on.
    pub ssrc: u32,
    /// Fraction of packets lost since the previous report, as a fixed-point
    /// 8-bit value (loss × 256).
    pub fraction_lost: u8,
    /// Cumulative number of packets lost, 24-bit signed (clamped here to
    /// the unsigned 24-bit range).
    pub cumulative_lost: u32,
    /// Extended highest sequence number received.
    pub highest_seq: u32,
    /// Interarrival jitter in media-clock units.
    pub jitter: u32,
    /// Middle 32 bits of the NTP timestamp of the last sender report (LSR).
    pub last_sr: u32,
    /// Delay since the last sender report, in 1/65536 s units (DLSR).
    pub delay_since_last_sr: u32,
}

impl ReportBlock {
    /// Encodes the loss fraction from a float in [0, 1].
    pub fn fraction_from_f64(loss: f64) -> u8 {
        (loss.clamp(0.0, 1.0) * 256.0).min(255.0) as u8
    }

    /// Decodes the loss fraction to a float in [0, 1].
    pub fn fraction_as_f64(&self) -> f64 {
        f64::from(self.fraction_lost) / 256.0
    }

    /// Jitter in milliseconds at the given media clock rate.
    pub fn jitter_ms(&self, clock_hz: u32) -> f64 {
        f64::from(self.jitter) / f64::from(clock_hz) * 1_000.0
    }
}

/// A receiver report: reporter SSRC plus report blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverReport {
    /// SSRC of the reporting receiver.
    pub reporter_ssrc: u32,
    /// Report blocks (at most 31, per the 5-bit count field).
    pub blocks: Vec<ReportBlock>,
}

/// RTCP parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtcpError {
    /// Datagram shorter than the fixed header.
    TooShort,
    /// Version field was not 2.
    BadVersion(u8),
    /// Packet type was not RR.
    NotReceiverReport(u8),
    /// Length field disagrees with the block count.
    LengthMismatch,
}

impl std::fmt::Display for RtcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtcpError::TooShort => write!(f, "datagram shorter than RTCP header"),
            RtcpError::BadVersion(v) => write!(f, "unsupported RTCP version {v}"),
            RtcpError::NotReceiverReport(pt) => write!(f, "not a receiver report (PT {pt})"),
            RtcpError::LengthMismatch => write!(f, "RTCP length field inconsistent"),
        }
    }
}

impl std::error::Error for RtcpError {}

impl ReceiverReport {
    /// Builds an RR with a single block — the common case for one probe
    /// stream.
    pub fn single(reporter_ssrc: u32, block: ReportBlock) -> ReceiverReport {
        ReceiverReport {
            reporter_ssrc,
            blocks: vec![block],
        }
    }

    /// Serializes to wire format (RFC 3550 §6.4.2).
    ///
    /// # Panics
    /// Panics if more than 31 blocks are present (the count field is 5 bits).
    pub fn encode(&self) -> Bytes {
        assert!(self.blocks.len() <= 31, "RR holds at most 31 blocks");
        let len_words = (RR_HEADER_LEN + self.blocks.len() * REPORT_BLOCK_LEN) / 4 - 1;
        let mut buf = BytesMut::with_capacity((len_words + 1) * 4);
        buf.put_u8(0x80 | self.blocks.len() as u8); // V=2, P=0, RC
        buf.put_u8(RTCP_PT_RR);
        buf.put_u16(len_words as u16);
        buf.put_u32(self.reporter_ssrc);
        for b in &self.blocks {
            buf.put_u32(b.ssrc);
            buf.put_u8(b.fraction_lost);
            let cum = b.cumulative_lost.min(0x00FF_FFFF);
            buf.put_u8((cum >> 16) as u8);
            buf.put_u16((cum & 0xFFFF) as u16);
            buf.put_u32(b.highest_seq);
            buf.put_u32(b.jitter);
            buf.put_u32(b.last_sr);
            buf.put_u32(b.delay_since_last_sr);
        }
        buf.freeze()
    }

    /// Parses a receiver report.
    pub fn decode(mut data: &[u8]) -> Result<ReceiverReport, RtcpError> {
        if data.len() < RR_HEADER_LEN {
            return Err(RtcpError::TooShort);
        }
        let b0 = data.get_u8();
        let version = b0 >> 6;
        if version != 2 {
            return Err(RtcpError::BadVersion(version));
        }
        let count = (b0 & 0x1F) as usize;
        let pt = data.get_u8();
        if pt != RTCP_PT_RR {
            return Err(RtcpError::NotReceiverReport(pt));
        }
        let len_words = data.get_u16() as usize;
        let expected = (RR_HEADER_LEN + count * REPORT_BLOCK_LEN) / 4 - 1;
        if len_words != expected || data.len() < 4 + count * REPORT_BLOCK_LEN {
            return Err(RtcpError::LengthMismatch);
        }
        let reporter_ssrc = data.get_u32();
        let mut blocks = Vec::with_capacity(count);
        for _ in 0..count {
            let ssrc = data.get_u32();
            let fraction_lost = data.get_u8();
            let hi = u32::from(data.get_u8());
            let lo = u32::from(data.get_u16());
            let cumulative_lost = (hi << 16) | lo;
            blocks.push(ReportBlock {
                ssrc,
                fraction_lost,
                cumulative_lost,
                highest_seq: data.get_u32(),
                jitter: data.get_u32(),
                last_sr: data.get_u32(),
                delay_since_last_sr: data.get_u32(),
            });
        }
        Ok(ReceiverReport {
            reporter_ssrc,
            blocks,
        })
    }
}

/// RTT computation from RR fields (RFC 3550 §6.4.1): when the sender
/// receives an RR at NTP-middle time `now`, the round-trip time is
/// `now − LSR − DLSR`, all in 1/65536-second units. Returns milliseconds;
/// `None` if the receiver never saw a sender report (LSR = 0).
pub fn rtt_from_rr(now_ntp_middle: u32, block: &ReportBlock) -> Option<f64> {
    if block.last_sr == 0 {
        return None;
    }
    let delta = now_ntp_middle
        .wrapping_sub(block.last_sr)
        .wrapping_sub(block.delay_since_last_sr);
    Some(f64::from(delta) / 65_536.0 * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block() -> ReportBlock {
        ReportBlock {
            ssrc: 0x1234_5678,
            fraction_lost: 25,
            cumulative_lost: 1000,
            highest_seq: 65_600,
            jitter: 96,
            last_sr: 0xAABB_CCDD,
            delay_since_last_sr: 6_5536,
        }
    }

    #[test]
    fn roundtrip_single_block() {
        let rr = ReceiverReport::single(42, block());
        let wire = rr.encode();
        assert_eq!(wire.len(), RR_HEADER_LEN + REPORT_BLOCK_LEN);
        let back = ReceiverReport::decode(&wire).unwrap();
        assert_eq!(back, rr);
    }

    #[test]
    fn roundtrip_multiple_blocks() {
        let mut blocks = Vec::new();
        for i in 0..5 {
            let mut b = block();
            b.ssrc = i;
            blocks.push(b);
        }
        let rr = ReceiverReport {
            reporter_ssrc: 7,
            blocks,
        };
        let back = ReceiverReport::decode(&rr.encode()).unwrap();
        assert_eq!(back.blocks.len(), 5);
        assert_eq!(back, rr);
    }

    #[test]
    fn wire_header_is_rfc3550() {
        let rr = ReceiverReport::single(0x0102_0304, block());
        let wire = rr.encode();
        assert_eq!(wire[0], 0x81, "V=2, RC=1");
        assert_eq!(wire[1], 201, "PT=RR");
        // length = 7 32-bit words minus one.
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]), 7);
        assert_eq!(&wire[4..8], &[1, 2, 3, 4]);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(ReceiverReport::decode(&[0x80]), Err(RtcpError::TooShort));
        let mut wire = ReceiverReport::single(1, block()).encode().to_vec();
        wire[0] = 0x41; // version 1
        assert_eq!(ReceiverReport::decode(&wire), Err(RtcpError::BadVersion(1)));
        let mut wire2 = ReceiverReport::single(1, block()).encode().to_vec();
        wire2[1] = 200; // SR, not RR
        assert_eq!(
            ReceiverReport::decode(&wire2),
            Err(RtcpError::NotReceiverReport(200))
        );
        let mut wire3 = ReceiverReport::single(1, block()).encode().to_vec();
        wire3[3] = 99; // bogus length
        assert_eq!(
            ReceiverReport::decode(&wire3),
            Err(RtcpError::LengthMismatch)
        );
    }

    #[test]
    fn fraction_conversions() {
        assert_eq!(ReportBlock::fraction_from_f64(0.0), 0);
        assert_eq!(ReportBlock::fraction_from_f64(0.5), 128);
        assert_eq!(ReportBlock::fraction_from_f64(1.0), 255);
        assert_eq!(ReportBlock::fraction_from_f64(2.0), 255);
        let b = ReportBlock {
            fraction_lost: 64,
            ..block()
        };
        assert!((b.fraction_as_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn jitter_unit_conversion() {
        let b = ReportBlock {
            jitter: 80,
            ..block()
        };
        // 80 units at 8 kHz = 10 ms.
        assert!((b.jitter_ms(8_000) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rtt_arithmetic() {
        // LSR at t=1000 (1/65536 s), DLSR = 32768 (0.5 s), now = 1000 + 32768
        // + 6554 (≈0.1 s) → RTT ≈ 100 ms.
        let b = ReportBlock {
            last_sr: 1000,
            delay_since_last_sr: 32_768,
            ..block()
        };
        let rtt = rtt_from_rr(1000 + 32_768 + 6_554, &b).unwrap();
        assert!((rtt - 100.0).abs() < 0.1, "rtt {rtt}");
        // No sender report seen → None.
        let b0 = ReportBlock {
            last_sr: 0,
            ..block()
        };
        assert_eq!(rtt_from_rr(5000, &b0), None);
    }

    #[test]
    fn rtt_handles_wraparound() {
        // now wrapped past u32::MAX.
        let b = ReportBlock {
            last_sr: u32::MAX - 100,
            delay_since_last_sr: 0,
            ..block()
        };
        let rtt = rtt_from_rr(100, &b).unwrap();
        // 201 units ≈ 3.07 ms.
        assert!((rtt - 201.0 / 65_536.0 * 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_lost_saturates_at_24_bits() {
        let b = ReportBlock {
            cumulative_lost: 0x0FFF_FFFF,
            ..block()
        };
        let rr = ReceiverReport::single(1, b);
        let back = ReceiverReport::decode(&rr.encode()).unwrap();
        assert_eq!(back.blocks[0].cumulative_lost, 0x00FF_FFFF);
    }

    proptest! {
        #[test]
        fn roundtrip_any_block(ssrc in any::<u32>(), fl in any::<u8>(), cum in 0u32..0x0100_0000,
                               seq in any::<u32>(), jit in any::<u32>(), lsr in any::<u32>(), dlsr in any::<u32>()) {
            let b = ReportBlock {
                ssrc, fraction_lost: fl, cumulative_lost: cum,
                highest_seq: seq, jitter: jit, last_sr: lsr, delay_since_last_sr: dlsr,
            };
            let rr = ReceiverReport::single(99, b);
            prop_assert_eq!(ReceiverReport::decode(&rr.encode()).unwrap(), rr);
        }
    }
}
