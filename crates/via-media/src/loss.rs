//! Gilbert–Elliott bursty packet loss.
//!
//! Real VoIP loss is bursty: congestion events drop runs of consecutive
//! packets. The two-state Gilbert–Elliott chain is the standard model — a
//! *good* state with near-zero loss and a *bad* state with high loss, with
//! geometric sojourn times. The per-call average loss reported in the
//! paper's dataset is this chain's stationary loss rate; the burst structure
//! is what the packet-trace MOS of §2.2 sees and the averaged metrics hide.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Two-state Gilbert–Elliott loss process.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(good → bad) per packet.
    pub p_gb: f64,
    /// P(bad → good) per packet.
    pub p_bg: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
    in_bad: bool,
}

impl GilbertElliott {
    /// Builds a chain with explicit parameters. Probabilities are clamped to
    /// [0, 1]; `p_bg` is floored at a tiny value so the bad state cannot be
    /// absorbing.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        Self {
            p_gb: p_gb.clamp(0.0, 1.0),
            p_bg: p_bg.clamp(1e-6, 1.0),
            loss_good: loss_good.clamp(0.0, 1.0),
            loss_bad: loss_bad.clamp(0.0, 1.0),
            in_bad: false,
        }
    }

    /// Builds a chain whose *stationary* loss rate is `mean_loss_pct`
    /// (percent) with mean burst length `burst_len` packets in the bad state.
    ///
    /// The bad state drops `loss_bad` of packets; the good state is clean.
    /// Stationary P(bad) = p_gb / (p_gb + p_bg); mean loss =
    /// P(bad)·loss_bad.
    pub fn with_mean_loss(mean_loss_pct: f64, burst_len: f64, rng_hint: &mut StdRng) -> Self {
        let loss_bad: f64 = 0.7;
        let mean = (mean_loss_pct / 100.0).clamp(0.0, 0.65);
        let p_bg = 1.0 / burst_len.max(1.0);
        // P(bad) needed: mean / loss_bad. From p_gb/(p_gb+p_bg) = P(bad):
        let p_bad = (mean / loss_bad).min(0.95);
        let p_gb = if p_bad >= 0.95 {
            1.0
        } else {
            p_bg * p_bad / (1.0 - p_bad)
        };
        let mut ge = Self::new(p_gb, p_bg, 0.0, loss_bad);
        // Start from the stationary distribution so short calls are unbiased.
        ge.in_bad = rng_hint.random::<f64>() < p_bad;
        ge
    }

    /// Advances the chain one packet; returns true if the packet is lost.
    pub fn next_lost(&mut self, rng: &mut StdRng) -> bool {
        if self.in_bad {
            if rng.random::<f64>() < self.p_bg {
                self.in_bad = false;
            }
        } else if rng.random::<f64>() < self.p_gb {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.random::<f64>() < p
    }

    /// Stationary loss probability of the chain.
    pub fn stationary_loss(&self) -> f64 {
        let p_bad = self.p_gb / (self.p_gb + self.p_bg);
        p_bad * self.loss_bad + (1.0 - p_bad) * self.loss_good
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_loss_matches_target() {
        let mut seed_rng = StdRng::seed_from_u64(4);
        for target in [0.3, 1.0, 3.0, 8.0] {
            let mut ge = GilbertElliott::with_mean_loss(target, 6.0, &mut seed_rng);
            assert!((ge.stationary_loss() * 100.0 - target).abs() < 0.05);
            let mut rng = StdRng::seed_from_u64(9);
            // At 0.3% loss with mean burst 6, n/6·0.003 ≈ 500 independent
            // burst events — enough that the 15% tolerance sits near 3σ.
            let n = 1_000_000;
            let lost = (0..n).filter(|_| ge.next_lost(&mut rng)).count();
            let measured = 100.0 * lost as f64 / n as f64;
            assert!(
                (measured - target).abs() / target < 0.15,
                "target {target}% measured {measured}%"
            );
        }
    }

    #[test]
    fn losses_are_bursty() {
        let mut seed_rng = StdRng::seed_from_u64(5);
        let mut ge = GilbertElliott::with_mean_loss(5.0, 8.0, &mut seed_rng);
        let mut rng = StdRng::seed_from_u64(6);
        let outcomes: Vec<bool> = (0..200_000).map(|_| ge.next_lost(&mut rng)).collect();
        // Conditional loss probability after a loss must exceed marginal.
        let marginal = outcomes.iter().filter(|&&l| l).count() as f64 / outcomes.len() as f64;
        let mut after_loss = 0usize;
        let mut losses = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                losses += 1;
                if w[1] {
                    after_loss += 1;
                }
            }
        }
        let conditional = after_loss as f64 / losses as f64;
        assert!(
            conditional > 2.0 * marginal,
            "conditional {conditional:.3} vs marginal {marginal:.3}: not bursty"
        );
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut seed_rng = StdRng::seed_from_u64(1);
        let mut ge = GilbertElliott::with_mean_loss(0.0, 5.0, &mut seed_rng);
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| !ge.next_lost(&mut rng)));
    }

    #[test]
    fn bad_state_is_never_absorbing() {
        let ge = GilbertElliott::new(0.5, 0.0, 0.0, 1.0);
        assert!(ge.p_bg > 0.0);
    }
}
