//! Property tests for the receiver-side multipath merge stage.
//!
//! The merge contract the replay engine leans on: `receive` conserves
//! packets (every copy is either the first of its sequence or a counted
//! dedup drop), is idempotent (re-receiving a merged stream is a no-op),
//! and is order-independent (any permutation of the per-path inputs merges
//! to the same stream). `simulate_set` inherits the permutation invariance
//! because every per-path draw comes from the path's own keyed stream.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::expect_used)]

use proptest::prelude::*;
use via_media::merge::{
    receive, simulate_set, MergeConfig, MergeMode, MergeScratch, MergedStream, PathArrivals,
    PathSpec,
};
use via_model::metrics::PathMetrics;

/// Turns raw generated `(time, tag)` pairs into per-path arrival vectors:
/// tag 0 marks the copy lost (`INFINITY`), anything else delivers at `time`.
fn build_paths(raw: &[Vec<(f64, u32)>]) -> Vec<PathArrivals> {
    raw.iter()
        .enumerate()
        .map(|(i, path)| PathArrivals {
            key: i as u64,
            arrivals: path
                .iter()
                .map(|&(t, tag)| if tag == 0 { f64::INFINITY } else { t })
                .collect(),
        })
        .collect()
}

proptest! {
    #[test]
    fn receive_conserves_packets(
        raw in prop::collection::vec(
            prop::collection::vec((0f64..2000.0, 0u32..4), 0..25),
            0..6,
        ),
    ) {
        let paths = build_paths(&raw);
        let mut merged = MergedStream::default();
        receive(&paths, &mut merged);

        // Sequence space is the longest path's.
        let n = paths.iter().map(|p| p.arrivals.len()).max().unwrap_or(0);
        prop_assert_eq!(merged.arrivals.len(), n);

        // Copies: every finite per-path entry, nothing more, nothing less.
        let copies = paths
            .iter()
            .flat_map(|p| &p.arrivals)
            .filter(|a| a.is_finite())
            .count() as u64;
        prop_assert_eq!(merged.copies_received, copies);

        // Each merged slot is exactly the earliest copy of its sequence
        // (or INFINITY when no path delivered one).
        for s in 0..n {
            let earliest = paths
                .iter()
                .filter_map(|p| p.arrivals.get(s))
                .copied()
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(merged.arrivals[s], earliest);
        }
        let unique = merged.arrivals.iter().filter(|a| a.is_finite()).count() as u64;
        prop_assert_eq!(merged.unique_received, unique);

        // Conservation: every received copy is either the kept first copy
        // of its sequence or a counted dedup drop.
        prop_assert_eq!(merged.dedup_drops(), copies - unique);
        prop_assert!(merged.unique_received <= merged.copies_received);
    }

    #[test]
    fn receive_is_idempotent(
        raw in prop::collection::vec(
            prop::collection::vec((0f64..2000.0, 0u32..4), 0..25),
            0..6,
        ),
    ) {
        let paths = build_paths(&raw);
        let mut merged = MergedStream::default();
        receive(&paths, &mut merged);

        // Feed the merged stream back in as a single path: the arrivals
        // must come out unchanged and every copy must be unique.
        let folded = [PathArrivals { key: 0, arrivals: merged.arrivals.clone() }];
        let mut again = MergedStream::default();
        receive(&folded, &mut again);
        prop_assert_eq!(&again.arrivals, &merged.arrivals);
        prop_assert_eq!(again.copies_received, merged.unique_received);
        prop_assert_eq!(again.unique_received, merged.unique_received);
        prop_assert_eq!(again.dedup_drops(), 0);
    }

    #[test]
    fn receive_is_order_independent(
        raw in prop::collection::vec(
            prop::collection::vec((0f64..2000.0, 0u32..4), 0..25),
            0..6,
        ),
        seed in any::<u64>(),
    ) {
        let paths = build_paths(&raw);
        let mut merged = MergedStream::default();
        receive(&paths, &mut merged);

        // A deterministic Fisher-Yates driven by the generated seed — no
        // external RNG, so failures replay exactly.
        let mut permuted = paths.clone();
        let mut state = seed | 1;
        for i in (1..permuted.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            permuted.swap(i, j);
        }
        let mut merged_permuted = MergedStream::default();
        receive(&permuted, &mut merged_permuted);
        prop_assert_eq!(merged, merged_permuted);
    }

    #[test]
    fn simulate_set_is_permutation_invariant_and_conserving(
        rtts in prop::collection::vec(20f64..400.0, 1..4),
        loss in 0f64..10.0,
        jitter in 0.5f64..20.0,
        call_seed in any::<u64>(),
        stripe in any::<bool>(),
    ) {
        let specs: Vec<PathSpec> = rtts
            .iter()
            .enumerate()
            .map(|(i, &rtt)| PathSpec::alive(PathMetrics::new(rtt, loss, jitter), i as u64 + 1))
            .collect();
        let mode = if stripe { MergeMode::Stripe } else { MergeMode::Duplicate };
        let cfg = MergeConfig { frames: 12, ..MergeConfig::default() };

        let mut scratch = MergeScratch::default();
        let report = simulate_set(&specs, mode, &cfg, call_seed, &mut scratch);

        // Conservation at the call level: per-sequence copies are bounded
        // by the carrier count (1 for stripe, |paths| for duplicate), and
        // dedup drops are exactly the redundant copies.
        prop_assert_eq!(report.sent, 12);
        let carriers = if stripe { 1 } else { specs.len() as u64 };
        prop_assert!(report.copies_received <= report.sent * carriers);
        prop_assert!(report.unique_received <= report.sent);
        prop_assert_eq!(report.dedup_drops, report.copies_received - report.unique_received);
        if stripe {
            prop_assert_eq!(report.dedup_drops, 0);
        }

        // Reversing the spec order must not change the merged call at all.
        let reversed: Vec<PathSpec> = specs.iter().rev().copied().collect();
        let report_rev = simulate_set(&reversed, mode, &cfg, call_seed, &mut scratch);
        prop_assert_eq!(report, report_rev);
    }
}
