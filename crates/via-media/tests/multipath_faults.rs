//! Fault matrix for the multipath merge model: each way a path set can
//! lose members mid-call is exercised in isolation and must produce exactly
//! its own signature — failover counters, the degraded flag, and the typed
//! [`MergeFailure`] cause — with no cross-talk between the cases.
//!
//! The grid mirrors `via-testbed/tests/fault_matrix.rs`: kill one path of a
//! two-path set and the call completes degraded with one counted failover;
//! kill both and the set fails with the *same* typed cause as a singlepath
//! relay death, so upstream failure handling never needs a multipath case.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::expect_used)]

use via_media::merge::{
    simulate_set, MergeConfig, MergeFailure, MergeMode, MergeReport, MergeScratch, PathSpec,
};
use via_model::metrics::PathMetrics;

/// Deterministic config: drawn deaths disabled so only the explicit
/// `dies_at_ms` knobs fire, exactly like the testbed's isolated fault knobs.
fn cfg() -> MergeConfig {
    MergeConfig {
        frames: 32,
        death_prob: 0.0,
        ..MergeConfig::default()
    }
}

fn path(key: u64) -> PathSpec {
    PathSpec::alive(PathMetrics::new(120.0, 1.0, 4.0), key)
}

fn dying(key: u64, at_ms: f64) -> PathSpec {
    PathSpec {
        dies_at_ms: at_ms,
        ..path(key)
    }
}

fn run(specs: &[PathSpec], mode: MergeMode) -> MergeReport {
    simulate_set(specs, mode, &cfg(), 77, &mut MergeScratch::default())
}

/// Mid-call: strictly inside the 32-frame (640 ms) call.
const MID_CALL_MS: f64 = 300.0;

#[test]
fn healthy_set_has_no_fault_signature() {
    for mode in [MergeMode::Duplicate, MergeMode::Stripe] {
        let r = run(&[path(1), path(2)], mode);
        assert_eq!(r.failovers, 0, "healthy {mode:?} set counted a failover");
        assert!(!r.degraded, "healthy {mode:?} set reported degraded");
        assert!(r.failure.is_none(), "healthy {mode:?} set reported failure");
        assert!(r.unique_received > 0);
    }
}

#[test]
fn kill_one_path_mid_call_is_a_failover_not_a_failure() {
    for mode in [MergeMode::Duplicate, MergeMode::Stripe] {
        let r = run(&[dying(1, MID_CALL_MS), path(2)], mode);
        assert_eq!(
            r.failovers, 1,
            "one mid-call death with a survivor must count exactly one failover ({mode:?})"
        );
        assert!(
            r.degraded,
            "the surviving call must be flagged degraded ({mode:?})"
        );
        assert!(
            r.failure.is_none(),
            "a survivor means the call completes — no typed failure ({mode:?})"
        );
        // The survivor keeps delivering after the death instant.
        assert!(
            r.unique_received > 0,
            "survivor carried no packets ({mode:?})"
        );
    }
}

#[test]
fn kill_both_paths_is_the_singlepath_death_failure() {
    // Both members die mid-call → the set is down, and the typed cause is
    // byte-for-byte the one a singlepath relay death produces.
    let both = run(
        &[dying(1, MID_CALL_MS), dying(2, MID_CALL_MS + 40.0)],
        MergeMode::Duplicate,
    );
    let single = run(&[dying(1, MID_CALL_MS)], MergeMode::Duplicate);

    let both_cause = both.failure.expect("dual death must fail the call");
    let single_cause = single.failure.expect("singlepath death must fail the call");
    assert_eq!(both_cause, MergeFailure::AllPathsDown);
    assert_eq!(
        both_cause, single_cause,
        "dual-death cause must match singlepath"
    );
    assert_eq!(both_cause.kind(), "all-paths-down");
    assert_eq!(single_cause.kind(), "all-paths-down");

    // The second death has no survivor to fail over to: only the first
    // counts as a failover. A fully-failed call is failed, not degraded.
    assert_eq!(both.failovers, 1);
    assert!(!both.degraded);
    // A lone path has nothing to fail over to at all.
    assert_eq!(single.failovers, 0);
}

#[test]
fn death_at_call_start_still_types_as_all_paths_down() {
    // Degenerate edge of the matrix: the only path is dead from the first
    // frame. No failover, no survivors, same typed cause.
    let r = run(&[dying(1, 0.0)], MergeMode::Duplicate);
    assert_eq!(
        r.failure.expect("dead-on-arrival path must fail").kind(),
        "all-paths-down"
    );
    assert_eq!(r.failovers, 0);
    assert_eq!(r.unique_received, 0, "a dead path must deliver nothing");
}

#[test]
fn death_after_call_end_is_not_a_fault() {
    // A death scheduled beyond the call window never fires: 32 frames end
    // at 640 ms, the knob is set to 10 s.
    for mode in [MergeMode::Duplicate, MergeMode::Stripe] {
        let r = run(&[dying(1, 10_000.0), path(2)], mode);
        assert_eq!(r.failovers, 0, "post-call death must not count ({mode:?})");
        assert!(!r.degraded, "post-call death must not degrade ({mode:?})");
        assert!(r.failure.is_none());
    }
}
