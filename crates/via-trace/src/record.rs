//! Call trace records.
//!
//! A [`CallRecord`] mirrors one row of the paper's dataset (§2.1): endpoints
//! (AS and country), timestamp, whether the call is international / inter-AS
//! / wireless, the average network metrics observed on the *default* path,
//! and an optional 1–5 user rating. The [`Trace`] is the chronological list
//! of records plus provenance.
//!
//! Replay experiments (§5) reuse the *skeleton* of each record — who calls
//! whom, when, and the client-side access extras — and re-sample path metrics
//! for whichever relaying option a strategy assigns.

use serde::{Deserialize, Serialize};
use via_model::ids::{AsId, CallId, ClientId, CountryId};
use via_model::metrics::PathMetrics;
use via_model::time::SimTime;

/// Client-side access extras of one call: the last-hop contribution
/// (e.g. Wi-Fi) that travels with the call no matter which relaying option
/// carries it. Applied on top of any option's path metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessExtra {
    /// Additional round-trip latency, ms.
    pub rtt_ms: f64,
    /// Additional loss, percent (combined through complements).
    pub loss_pct: f64,
    /// Additional jitter, ms (combined in quadrature).
    pub jitter_ms: f64,
}

impl AccessExtra {
    /// Applies the extras to a path's metrics.
    pub fn apply(&self, path: &PathMetrics) -> PathMetrics {
        let p1 = (path.loss_pct / 100.0).clamp(0.0, 1.0);
        let p2 = (self.loss_pct / 100.0).clamp(0.0, 1.0);
        PathMetrics::new(
            path.rtt_ms + self.rtt_ms,
            100.0 * (1.0 - (1.0 - p1) * (1.0 - p2)),
            (path.jitter_ms.powi(2) + self.jitter_ms.powi(2)).sqrt(),
        )
    }
}

/// One call in the trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallRecord {
    /// Dense call id (also the per-call random stream selector in replay).
    pub id: CallId,
    /// Call start time.
    pub t: SimTime,
    /// Caller's AS.
    pub src_as: AsId,
    /// Callee's AS.
    pub dst_as: AsId,
    /// Caller's country.
    pub src_country: CountryId,
    /// Callee's country.
    pub dst_country: CountryId,
    /// Caller identity (for user counts).
    pub caller: ClientId,
    /// Callee identity.
    pub callee: ClientId,
    /// True if at least one endpoint is on a wireless last hop (83 % in the
    /// paper's dataset).
    pub wireless: bool,
    /// Call duration in seconds.
    pub duration_s: f64,
    /// Client-side access extras; identical for every relaying option.
    pub access_extra: AccessExtra,
    /// Average network metrics observed on the default path (access extras
    /// already applied) — what the paper's passive dataset records.
    pub direct_metrics: PathMetrics,
    /// User rating (1–5) if this call was sampled for feedback.
    pub rating: Option<u8>,
}

impl CallRecord {
    /// True if caller and callee are in different countries.
    pub fn is_international(&self) -> bool {
        self.src_country != self.dst_country
    }

    /// True if caller and callee are in different ASes.
    pub fn is_inter_as(&self) -> bool {
        self.src_as != self.dst_as
    }

    /// The canonical AS pair of this call.
    pub fn as_pair(&self) -> via_model::ids::AsPair {
        via_model::ids::AsPair::new(self.src_as, self.dst_as)
    }
}

/// A chronological call trace plus generation provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Seed the trace was generated with.
    pub seed: u64,
    /// Trace horizon in days.
    pub days: u64,
    /// Records ordered by start time.
    pub records: Vec<CallRecord>,
    /// Lazily computed chronology verdict. Filled by the first
    /// [`Trace::is_chronological`] call (an O(n) scan) and reused by every
    /// later one, so repeated replay setups over one trace validate once.
    /// Mutating `records` after the first query is not supported — rebuild
    /// via [`Trace::new`] instead.
    #[serde(skip)]
    chronology: std::sync::OnceLock<bool>,
}

impl Trace {
    /// Builds a trace from its parts. Chronology is validated lazily on the
    /// first [`Trace::is_chronological`] query and the verdict cached.
    pub fn new(seed: u64, days: u64, records: Vec<CallRecord>) -> Self {
        Trace {
            seed,
            days,
            records,
            chronology: std::sync::OnceLock::new(),
        }
    }

    /// Number of calls.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace holds no calls.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Verifies chronological ordering (replay depends on it). The O(n)
    /// scan runs once per trace; the verdict is cached, so per-run replay
    /// setup does not rescan a trace it already validated.
    pub fn is_chronological(&self) -> bool {
        *self
            .chronology
            .get_or_init(|| self.records.windows(2).all(|w| w[0].t <= w[1].t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_model::ids::AsPair;

    fn record(src: u32, dst: u32, src_c: u32, dst_c: u32) -> CallRecord {
        CallRecord {
            id: CallId(0),
            t: SimTime::ZERO,
            src_as: AsId(src),
            dst_as: AsId(dst),
            src_country: CountryId(src_c),
            dst_country: CountryId(dst_c),
            caller: ClientId(1),
            callee: ClientId(2),
            wireless: true,
            duration_s: 120.0,
            access_extra: AccessExtra::default(),
            direct_metrics: PathMetrics::new(100.0, 0.5, 5.0),
            rating: None,
        }
    }

    #[test]
    fn classification_flags() {
        let intl = record(0, 1, 0, 1);
        assert!(intl.is_international());
        assert!(intl.is_inter_as());
        let domestic_intra = record(3, 3, 2, 2);
        assert!(!domestic_intra.is_international());
        assert!(!domestic_intra.is_inter_as());
        assert_eq!(domestic_intra.as_pair(), AsPair::new(AsId(3), AsId(3)));
    }

    #[test]
    fn access_extra_composition() {
        let extra = AccessExtra {
            rtt_ms: 10.0,
            loss_pct: 1.0,
            jitter_ms: 3.0,
        };
        let path = PathMetrics::new(100.0, 1.0, 4.0);
        let m = extra.apply(&path);
        assert_eq!(m.rtt_ms, 110.0);
        assert!((m.loss_pct - 1.99).abs() < 1e-9);
        assert!((m.jitter_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_extra_is_identity() {
        let path = PathMetrics::new(123.0, 2.5, 7.0);
        let m = AccessExtra::default().apply(&path);
        assert!((m.rtt_ms - path.rtt_ms).abs() < 1e-12);
        assert!((m.loss_pct - path.loss_pct).abs() < 1e-9);
        assert!((m.jitter_ms - path.jitter_ms).abs() < 1e-9);
    }

    #[test]
    fn chronology_check() {
        let mut sorted = vec![record(0, 1, 0, 1), record(1, 2, 1, 2)];
        sorted[1].t = SimTime(100);
        let tr = Trace::new(0, 1, sorted.clone());
        assert!(tr.is_chronological());
        assert_eq!(tr.len(), 2);
        assert!(!tr.is_empty());

        let mut shuffled = sorted;
        shuffled[0].t = SimTime(200);
        assert!(!Trace::new(0, 1, shuffled).is_chronological());
    }

    #[test]
    fn chronology_verdict_is_cached() {
        // The scan runs once: a cached verdict survives (unsupported)
        // post-query mutation, which is exactly the documented contract —
        // repeated replay setups reuse the first scan.
        let mut tr = Trace::new(0, 1, vec![record(0, 1, 0, 1), record(1, 2, 1, 2)]);
        assert!(tr.is_chronological());
        tr.records[0].t = SimTime(999);
        assert!(tr.is_chronological(), "verdict must come from the cache");
        // Rebuilding re-validates.
        let rebuilt = Trace::new(tr.seed, tr.days, tr.records);
        assert!(!rebuilt.is_chronological());
    }

    #[test]
    fn chronology_cache_is_not_serialized() {
        let tr = Trace::new(7, 1, vec![record(0, 1, 0, 1)]);
        assert!(tr.is_chronological());
        let json = serde_json::to_string(&tr).unwrap();
        assert!(
            !json.contains("chronology"),
            "cache leaked into the wire form"
        );
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records, tr.records);
        assert!(back.is_chronological());
    }
}
