//! Compact binary on-disk trace format (`.vbt` — "via binary trace").
//!
//! The JSONL format (see [`crate::io`]) is convenient for inspection but
//! costs ~4× the bytes and a full JSON parse per record. At paper scale and
//! beyond, decode bandwidth and memory become the replay ceiling, so this
//! module defines a fixed-width little-endian record encoding framed into
//! length-prefixed window chunks:
//!
//! ```text
//! header (56 bytes)
//!   0   8  magic  b"VIATRACE"
//!   8   4  schema version (currently 1), u32 LE
//!   12  4  reserved (0)
//!   16  8  trace seed
//!   24  8  trace horizon, days
//!   32  8  record count
//!   40  8  frame window length, seconds
//!   48  8  header digest (FNV-1a over bytes 0..48)
//! frame (repeated until `record count` records have been read)
//!   0   8  window index (frame window length × index = start time)
//!   8   4  record count in this frame, u32 LE
//!   12  4  payload length in bytes (= count × 94), u32 LE
//!   16  …  fixed-width records
//! ```
//!
//! Each record is 94 bytes (`RECORD_BYTES`): ids and endpoints as `u32`,
//! the timestamp as `u64`, two flag/rating bytes, and seven `f64` metric
//! fields, all little-endian. Decoding is a straight pass over the frame
//! payload into a caller-reused `Vec<CallRecord>` — no allocation per record,
//! no intermediate strings.
//!
//! Frames are keyed by the *file's* framing window (default 24 h). Readers
//! re-window the record stream to whatever control period the replay wants
//! (see [`crate::stream`]), so the on-disk framing only bounds reader memory:
//! a reader holds at most one frame's payload plus its decoded records.
//!
//! The header is written with a zero record count, then patched in place by
//! [`BinWriter::finish`] — so a crashed writer leaves a file whose digest
//! does not verify, and truncated or bit-flipped files fail loudly
//! ([`BinError`]) instead of yielding a silently short trace.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use via_model::ids::{AsId, CallId, ClientId, CountryId};
use via_model::metrics::PathMetrics;
use via_model::time::{SimTime, WindowLen};

use crate::record::{AccessExtra, CallRecord, Trace};

/// File magic, first 8 bytes of every binary trace.
pub const MAGIC: [u8; 8] = *b"VIATRACE";
/// Schema version this build reads and writes.
pub const SCHEMA_VERSION: u32 = 1;
/// Encoded size of one [`CallRecord`].
pub const RECORD_BYTES: usize = 94;
/// Encoded size of the file header.
pub const HEADER_BYTES: usize = 56;
/// Encoded size of a frame prefix (window index + count + payload length).
pub const FRAME_PREFIX_BYTES: usize = 16;
/// Sentinel in the rating byte meaning "no rating" (ratings are 1–5).
const NO_RATING: u8 = 0xFF;

/// Errors arising from binary trace encode/decode.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The first 8 bytes are not the `VIATRACE` magic.
    BadMagic,
    /// Schema version this build does not understand.
    BadVersion(u32),
    /// Header digest mismatch: truncated write or corrupted header.
    BadDigest {
        /// Digest stored in the file.
        stored: u64,
        /// Digest recomputed over the header bytes.
        computed: u64,
    },
    /// The file ended inside a header, frame prefix, or frame payload.
    Truncated {
        /// What was being read when the file ran out.
        context: &'static str,
    },
    /// A frame prefix whose payload length disagrees with its record count.
    FrameMismatch {
        /// Records the prefix claims.
        count: u32,
        /// Payload bytes the prefix claims.
        payload_len: u32,
    },
    /// Total records decoded differ from the header's record count.
    CountMismatch {
        /// Count the header promised.
        expected: u64,
        /// Records actually present.
        actual: u64,
    },
    /// A record field held a value the schema cannot represent (e.g. a
    /// rating outside 1–5 on encode).
    BadField(&'static str),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "binary trace I/O error: {e}"),
            BinError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            BinError::BadVersion(v) => write!(
                f,
                "binary trace schema version {v} unsupported (this build reads {SCHEMA_VERSION})"
            ),
            BinError::BadDigest { stored, computed } => write!(
                f,
                "binary trace header digest mismatch (stored {stored:#018x}, computed {computed:#018x}) — truncated write or corruption"
            ),
            BinError::Truncated { context } => {
                write!(f, "binary trace truncated while reading {context}")
            }
            BinError::FrameMismatch { count, payload_len } => write!(
                f,
                "binary trace frame prefix inconsistent: {count} records but {payload_len} payload bytes"
            ),
            BinError::CountMismatch { expected, actual } => write!(
                f,
                "binary trace holds {actual} records but its header promised {expected}"
            ),
            BinError::BadField(what) => {
                write!(f, "binary trace field out of encodable range: {what}")
            }
        }
    }
}

impl std::error::Error for BinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

/// FNV-1a 64-bit over a byte slice — the header integrity digest. Chosen for
/// zero dependencies and total determinism, not cryptographic strength.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Decoded binary trace header: provenance and layout of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinHeader {
    /// Schema version of the file.
    pub version: u32,
    /// Seed the trace was generated with.
    pub seed: u64,
    /// Trace horizon in days.
    pub days: u64,
    /// Total records in the file.
    pub records: u64,
    /// On-disk framing window length.
    pub frame_len: WindowLen,
    /// Stored header digest (already verified on read).
    pub digest: u64,
}

impl BinHeader {
    fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut buf = [0u8; HEADER_BYTES];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        // bytes 12..16 reserved, zero.
        buf[16..24].copy_from_slice(&self.seed.to_le_bytes());
        buf[24..32].copy_from_slice(&self.days.to_le_bytes());
        buf[32..40].copy_from_slice(&self.records.to_le_bytes());
        buf[40..48].copy_from_slice(&self.frame_len.secs().to_le_bytes());
        let digest = fnv1a(&buf[0..48]);
        buf[48..56].copy_from_slice(&digest.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8; HEADER_BYTES]) -> Result<BinHeader, BinError> {
        if buf[0..8] != MAGIC {
            return Err(BinError::BadMagic);
        }
        let u32_at = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
        let u64_at = |o: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[o..o + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(8);
        if version != SCHEMA_VERSION {
            return Err(BinError::BadVersion(version));
        }
        let stored = u64_at(48);
        let computed = fnv1a(&buf[0..48]);
        if stored != computed {
            return Err(BinError::BadDigest { stored, computed });
        }
        let frame_secs = u64_at(40);
        if frame_secs == 0 {
            return Err(BinError::BadField("frame window length of zero"));
        }
        Ok(BinHeader {
            version,
            seed: u64_at(16),
            days: u64_at(24),
            records: u64_at(32),
            frame_len: WindowLen::secs_checked(frame_secs)
                .ok_or(BinError::BadField("frame window length of zero"))?,
            digest: stored,
        })
    }
}

/// Encodes one record into `out` (appends exactly [`RECORD_BYTES`] bytes).
fn encode_record(r: &CallRecord, out: &mut Vec<u8>) -> Result<(), BinError> {
    let rating = match r.rating {
        None => NO_RATING,
        Some(v) if (1..=5).contains(&v) => v,
        Some(_) => return Err(BinError::BadField("rating outside 1–5")),
    };
    out.extend_from_slice(&r.id.0.to_le_bytes());
    out.extend_from_slice(&r.t.secs().to_le_bytes());
    out.extend_from_slice(&r.src_as.0.to_le_bytes());
    out.extend_from_slice(&r.dst_as.0.to_le_bytes());
    out.extend_from_slice(&r.src_country.0.to_le_bytes());
    out.extend_from_slice(&r.dst_country.0.to_le_bytes());
    out.extend_from_slice(&r.caller.0.to_le_bytes());
    out.extend_from_slice(&r.callee.0.to_le_bytes());
    out.push(u8::from(r.wireless));
    out.push(rating);
    out.extend_from_slice(&r.duration_s.to_le_bytes());
    out.extend_from_slice(&r.access_extra.rtt_ms.to_le_bytes());
    out.extend_from_slice(&r.access_extra.loss_pct.to_le_bytes());
    out.extend_from_slice(&r.access_extra.jitter_ms.to_le_bytes());
    out.extend_from_slice(&r.direct_metrics.rtt_ms.to_le_bytes());
    out.extend_from_slice(&r.direct_metrics.loss_pct.to_le_bytes());
    out.extend_from_slice(&r.direct_metrics.jitter_ms.to_le_bytes());
    Ok(())
}

/// Decodes one record from a [`RECORD_BYTES`]-sized window of `buf`.
fn decode_record(buf: &[u8]) -> CallRecord {
    debug_assert_eq!(buf.len(), RECORD_BYTES);
    let u32_at = |o: usize| u32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
    let u64_at = |o: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&buf[o..o + 8]);
        u64::from_le_bytes(b)
    };
    let f64_at = |o: usize| f64::from_bits(u64_at(o));
    CallRecord {
        id: CallId(u32_at(0)),
        t: SimTime(u64_at(4)),
        src_as: AsId(u32_at(12)),
        dst_as: AsId(u32_at(16)),
        src_country: CountryId(u32_at(20)),
        dst_country: CountryId(u32_at(24)),
        caller: ClientId(u32_at(28)),
        callee: ClientId(u32_at(32)),
        wireless: buf[36] != 0,
        rating: (buf[37] != NO_RATING).then_some(buf[37]),
        duration_s: f64_at(38),
        access_extra: AccessExtra {
            rtt_ms: f64_at(46),
            loss_pct: f64_at(54),
            jitter_ms: f64_at(62),
        },
        direct_metrics: PathMetrics::new(f64_at(70), f64_at(78), f64_at(86)),
    }
}

/// Streaming binary trace writer: records arrive in chronological order, are
/// framed by the configured window length, and only the current frame is
/// buffered. [`BinWriter::finish`] patches the header's record count in
/// place, so the header digest only verifies for completely written files.
pub struct BinWriter {
    file: BufWriter<File>,
    header: BinHeader,
    frame: Vec<u8>,
    frame_records: u32,
    frame_window: Option<u64>,
    written: u64,
}

impl BinWriter {
    /// Creates a writer, emitting a provisional header (zero records).
    pub fn create(
        path: &Path,
        seed: u64,
        days: u64,
        frame_len: WindowLen,
    ) -> Result<Self, BinError> {
        let mut file = BufWriter::new(File::create(path)?);
        let header = BinHeader {
            version: SCHEMA_VERSION,
            seed,
            days,
            records: 0,
            frame_len,
            digest: 0,
        };
        file.write_all(&header.encode())?;
        Ok(BinWriter {
            file,
            header,
            frame: Vec::new(),
            frame_records: 0,
            frame_window: None,
            written: 0,
        })
    }

    /// Appends one record. Records must arrive in nondecreasing time order —
    /// frame boundaries are derived from the record stream.
    pub fn push(&mut self, r: &CallRecord) -> Result<(), BinError> {
        let window = self.header.frame_len.window_of(r.t).index;
        if self.frame_window.is_some_and(|w| w != window) {
            self.flush_frame()?;
        }
        self.frame_window = Some(window);
        encode_record(r, &mut self.frame)?;
        self.frame_records += 1;
        self.written += 1;
        Ok(())
    }

    fn flush_frame(&mut self) -> Result<(), BinError> {
        let Some(window) = self.frame_window.take() else {
            return Ok(());
        };
        let payload_len = u32::try_from(self.frame.len())
            .map_err(|_| BinError::BadField("frame payload beyond u32 bytes"))?;
        self.file.write_all(&window.to_le_bytes())?;
        self.file.write_all(&self.frame_records.to_le_bytes())?;
        self.file.write_all(&payload_len.to_le_bytes())?;
        self.file.write_all(&self.frame)?;
        self.frame.clear();
        self.frame_records = 0;
        Ok(())
    }

    /// Flushes the last frame and patches the header with the final record
    /// count and digest. Consumes the writer; the file is only valid after
    /// this returns `Ok`.
    pub fn finish(mut self) -> Result<u64, BinError> {
        self.flush_frame()?;
        self.header.records = self.written;
        let mut file = self
            .file
            .into_inner()
            .map_err(|e| BinError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&self.header.encode())?;
        file.sync_data()?;
        Ok(self.written)
    }
}

/// Streaming binary trace reader. Holds one frame's payload plus its decoded
/// records at a time; both buffers are reused across frames.
pub struct BinReader {
    file: BufReader<File>,
    header: BinHeader,
    payload: Vec<u8>,
    read_records: u64,
    bytes_read: u64,
}

impl BinReader {
    /// Opens a binary trace, verifying magic, version, and header digest.
    pub fn open(path: &Path) -> Result<Self, BinError> {
        let mut file = BufReader::new(File::open(path)?);
        let mut buf = [0u8; HEADER_BYTES];
        read_exact_or(&mut file, &mut buf, "header")?;
        let header = BinHeader::decode(&buf)?;
        Ok(BinReader {
            file,
            header,
            payload: Vec::new(),
            read_records: 0,
            bytes_read: HEADER_BYTES as u64,
        })
    }

    /// The file's header.
    pub fn header(&self) -> &BinHeader {
        &self.header
    }

    /// Total bytes consumed from the file so far (header, prefixes, and
    /// payloads) — the numerator of the bench's bytes-decoded/sec figure.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads the next frame, appending its decoded records to `out`.
    /// Returns the frame's on-disk window index, or `None` at a clean end of
    /// file (after exactly `header.records` records).
    pub fn next_frame(&mut self, out: &mut Vec<CallRecord>) -> Result<Option<u64>, BinError> {
        let mut prefix = [0u8; FRAME_PREFIX_BYTES];
        match self.file.read(&mut prefix[..1])? {
            0 => {
                if self.read_records != self.header.records {
                    return Err(BinError::CountMismatch {
                        expected: self.header.records,
                        actual: self.read_records,
                    });
                }
                return Ok(None);
            }
            _ => read_exact_or(&mut self.file, &mut prefix[1..], "frame prefix")?,
        }
        let window = u64::from_le_bytes([
            prefix[0], prefix[1], prefix[2], prefix[3], prefix[4], prefix[5], prefix[6], prefix[7],
        ]);
        let count = u32::from_le_bytes([prefix[8], prefix[9], prefix[10], prefix[11]]);
        let payload_len = u32::from_le_bytes([prefix[12], prefix[13], prefix[14], prefix[15]]);
        if payload_len as usize != count as usize * RECORD_BYTES {
            return Err(BinError::FrameMismatch { count, payload_len });
        }
        self.payload.resize(payload_len as usize, 0);
        read_exact_or(&mut self.file, &mut self.payload, "frame payload")?;
        self.bytes_read += (FRAME_PREFIX_BYTES + payload_len as usize) as u64;
        self.read_records += u64::from(count);
        if self.read_records > self.header.records {
            return Err(BinError::CountMismatch {
                expected: self.header.records,
                actual: self.read_records,
            });
        }
        out.reserve(count as usize);
        for chunk in self.payload.chunks_exact(RECORD_BYTES) {
            out.push(decode_record(chunk));
        }
        Ok(Some(window))
    }
}

/// `read_exact` mapped to [`BinError::Truncated`] on a premature EOF.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), BinError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            BinError::Truncated { context }
        } else {
            BinError::Io(e)
        }
    })
}

/// Writes a whole materialized trace with the default daily framing.
pub fn write_binary(trace: &Trace, path: &Path) -> Result<(), BinError> {
    write_binary_framed(trace, path, WindowLen::DAY)
}

/// Writes a whole materialized trace framed by `frame_len`.
pub fn write_binary_framed(
    trace: &Trace,
    path: &Path,
    frame_len: WindowLen,
) -> Result<(), BinError> {
    let mut w = BinWriter::create(path, trace.seed, trace.days, frame_len)?;
    for r in &trace.records {
        w.push(r)?;
    }
    w.finish()?;
    Ok(())
}

/// Reads a whole binary trace into memory. The streaming pipeline
/// ([`crate::stream`]) is the bounded-memory path; this is the convenience
/// form for tools and tests.
pub fn read_binary(path: &Path) -> Result<Trace, BinError> {
    let mut r = BinReader::open(path)?;
    let mut records = Vec::with_capacity(usize::try_from(r.header.records).unwrap_or(0));
    while r.next_frame(&mut records)?.is_some() {}
    Ok(Trace::new(r.header.seed, r.header.days, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceConfig, TraceGenerator};
    use via_netsim::{World, WorldConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("via-trace-binfmt-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_trace() -> Trace {
        let world = World::generate(&WorldConfig::tiny(), 33);
        TraceGenerator::new(&world, TraceConfig::tiny(), 33).generate()
    }

    #[test]
    fn roundtrip_is_exact() {
        let trace = sample_trace();
        let path = tmp("roundtrip.vbt");
        write_binary(&trace, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.seed, trace.seed);
        assert_eq!(back.days, trace.days);
        assert_eq!(back.records, trace.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_survives_odd_framing() {
        let trace = sample_trace();
        let path = tmp("framing.vbt");
        write_binary_framed(&trace, &path, WindowLen::hours(5)).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.records, trace.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_codec_handles_field_extremes() {
        let mut r = sample_trace().records[0].clone();
        r.rating = None;
        r.duration_s = f64::MAX;
        r.access_extra.jitter_ms = f64::MIN_POSITIVE;
        let mut buf = Vec::new();
        encode_record(&r, &mut buf).unwrap();
        assert_eq!(buf.len(), RECORD_BYTES);
        assert_eq!(decode_record(&buf), r);
    }

    #[test]
    fn out_of_range_rating_is_rejected() {
        let mut r = sample_trace().records[0].clone();
        r.rating = Some(6);
        let mut buf = Vec::new();
        assert!(matches!(
            encode_record(&r, &mut buf),
            Err(BinError::BadField(_))
        ));
    }

    #[test]
    fn truncated_file_fails_loudly() {
        let trace = sample_trace();
        let path = tmp("truncated.vbt");
        write_binary(&trace, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut the file mid-payload: the reader must report truncation or a
        // count mismatch, never a silently short trace.
        std::fs::write(&path, &bytes[..bytes.len() - 31]).unwrap();
        let err = read_binary(&path).unwrap_err();
        assert!(
            matches!(
                err,
                BinError::Truncated { .. } | BinError::CountMismatch { .. }
            ),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_fails_digest() {
        let trace = sample_trace();
        let path = tmp("digest.vbt");
        write_binary(&trace, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[17] ^= 0x40; // flip a seed bit
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_binary(&path).unwrap_err(),
            BinError::BadDigest { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let path = tmp("magic.vbt");
        std::fs::write(
            &path,
            b"NOTATRCE________________________________________________",
        )
        .unwrap();
        assert!(matches!(
            read_binary(&path).unwrap_err(),
            BinError::BadMagic
        ));
        let trace = sample_trace();
        write_binary(&trace, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 99; // version
        let digest = fnv1a(&bytes[0..48]);
        bytes[48..56].copy_from_slice(&digest.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_binary(&path).unwrap_err(),
            BinError::BadVersion(99)
        ));
        std::fs::remove_file(&path).ok();
    }
}
