//! Call workload generation.
//!
//! Produces a chronological [`Trace`] over a generated world, matching the
//! composition of the paper's dataset (§2.1): 46.6 % of calls international,
//! 80.7 % inter-AS, 83 % with a wireless last hop, diurnal arrival intensity
//! peaked in the caller's local evening, and a heavy-tailed user population
//! per AS.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Gamma, LogNormal};
use serde::{Deserialize, Serialize};
use via_model::ids::{AsId, CallId, ClientId, CountryId};
use via_model::options::RelayOption;
use via_model::seed;
use via_model::time::{SimTime, SECS_PER_DAY};
use via_netsim::World;
use via_quality::RatingModel;

use crate::record::{AccessExtra, CallRecord, Trace};

/// Workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Mean calls per simulated day.
    pub calls_per_day: usize,
    /// Days to generate; capped by the world's episode horizon.
    pub days: u64,
    /// Target fraction of international calls (paper: 0.466).
    pub international_fraction: f64,
    /// Target fraction of inter-AS calls (paper: 0.807).
    pub inter_as_fraction: f64,
    /// Fraction of calls with a wireless last hop (paper: 0.83).
    pub wireless_fraction: f64,
    /// Mean call duration, seconds.
    pub mean_duration_s: f64,
    /// Number of distinct users per unit of AS weight.
    pub users_per_weight: usize,
    /// User rating model (drives the PCR analysis).
    pub rating: RatingModel,
}

impl TraceConfig {
    /// Tiny workload for doc tests: ~1 K calls/day for 8 days.
    pub fn tiny() -> Self {
        Self {
            calls_per_day: 1_000,
            days: 8,
            ..Self::default()
        }
    }

    /// Small workload for integration tests and the default experiment
    /// scale: dense enough that popular international AS pairs pass the
    /// paper's ≥10-calls-per-window evaluation filter.
    pub fn small() -> Self {
        Self {
            calls_per_day: 10_000,
            days: 21,
            ..Self::default()
        }
    }

    /// Experiment-scale workload: ~2.2 M calls over 8 weeks.
    pub fn paper_scale() -> Self {
        Self {
            calls_per_day: 40_000,
            days: 56,
            ..Self::default()
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            calls_per_day: 1_000,
            days: 14,
            international_fraction: 0.466,
            inter_as_fraction: 0.807,
            wireless_fraction: 0.83,
            mean_duration_s: 180.0,
            users_per_weight: 400,
            rating: RatingModel {
                // Rate every generated call: the synthetic trace plays the
                // role of the *rated subsample* of the paper's dataset.
                rating_probability: 1.0,
                ..RatingModel::default()
            },
        }
    }
}

/// Weighted-alias-free cumulative sampler over AS indices.
#[derive(Debug, Clone)]
struct WeightedAses {
    cumulative: Vec<f64>,
    total: f64,
    indices: Vec<usize>,
}

impl WeightedAses {
    fn new(weights: impl Iterator<Item = (usize, f64)>) -> Option<Self> {
        let mut cumulative = Vec::new();
        let mut indices = Vec::new();
        let mut total = 0.0;
        for (idx, w) in weights {
            if w <= 0.0 {
                continue;
            }
            total += w;
            cumulative.push(total);
            indices.push(idx);
        }
        (total > 0.0).then_some(Self {
            cumulative,
            total,
            indices,
        })
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.random::<f64>() * self.total;
        let pos = self.cumulative.partition_point(|&c| c < u);
        self.indices[pos.min(self.indices.len() - 1)]
    }
}

/// Unwraps a distribution constructor whose parameters are known-valid
/// constants (finite μ, positive σ/shape). Keeps the panic explicit and
/// documented instead of hidden behind `expect`.
fn infallible<T, E: std::fmt::Debug>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(d) => d,
        Err(e) => unreachable!("{what} built from constant valid parameters: {e:?}"),
    }
}

/// Generates call traces over a world.
pub struct TraceGenerator<'w> {
    world: &'w World,
    config: TraceConfig,
    trace_seed: u64,
    /// `None` when the world has no positively-weighted AS; [`Self::generate`]
    /// then yields an empty trace instead of panicking.
    global: Option<WeightedAses>,
    by_country: Vec<Option<WeightedAses>>,
    intl_by_country: Vec<Option<WeightedAses>>,
    /// Users per AS, proportional to weight.
    users_per_as: Vec<u32>,
}

impl<'w> TraceGenerator<'w> {
    /// Prepares a generator; cheap, all sampling tables are built here.
    pub fn new(world: &'w World, config: TraceConfig, trace_seed: u64) -> Self {
        let as_weight =
            |a: &via_netsim::AsInfo| a.weight * world.countries[a.country.index()].weight;
        let global = WeightedAses::new(
            world
                .ases
                .iter()
                .enumerate()
                .map(|(i, a)| (i, as_weight(a))),
        );

        let n_countries = world.countries.len();
        let mut by_country = Vec::with_capacity(n_countries);
        let mut intl_by_country = Vec::with_capacity(n_countries);
        for c in 0..n_countries {
            let cid = CountryId(c as u32);
            by_country.push(WeightedAses::new(
                world
                    .ases
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.country == cid)
                    .map(|(i, a)| (i, as_weight(a))),
            ));
            intl_by_country.push(WeightedAses::new(
                world
                    .ases
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.country != cid)
                    .map(|(i, a)| (i, as_weight(a))),
            ));
        }

        let users_per_as = world
            .ases
            .iter()
            .map(|a| ((as_weight(a) * config.users_per_weight as f64).ceil() as u32).max(2))
            .collect();

        Self {
            world,
            config,
            trace_seed,
            global,
            by_country,
            intl_by_country,
            users_per_as,
        }
    }

    /// Trace horizon actually generated: the configured days capped by the
    /// world's episode horizon.
    pub fn effective_days(&self) -> u64 {
        self.config.days.min(self.world.config.horizon_days)
    }

    /// Exact number of records [`Self::generate`] (and [`Self::stream`])
    /// produces — the generator emits precisely `calls_per_day` records per
    /// effective day, so the count is known before generating anything.
    pub fn record_count(&self) -> u64 {
        if self.global.is_none() {
            return 0;
        }
        self.config.calls_per_day as u64 * self.effective_days()
    }

    /// Builds the sampling distributions shared by every generated day.
    fn dists(&self) -> GenDists {
        // A non-positive or non-finite configured mean would make ln() NaN;
        // fall back to the default 180 s rather than panic.
        let mean_s = if self.config.mean_duration_s.is_finite() && self.config.mean_duration_s > 0.0
        {
            self.config.mean_duration_s
        } else {
            180.0
        };
        GenDists {
            duration: infallible(
                LogNormal::new(mean_s.ln() - 0.5 * 0.8 * 0.8, 0.8),
                "duration lognormal",
            ),
            wifi_jitter: infallible(
                LogNormal::new(3.0f64.ln() - 0.5 * 0.5 * 0.5, 0.5),
                "wifi jitter lognormal",
            ),
            wifi_loss: infallible(Gamma::new(0.5, 0.3), "wifi loss gamma"),
        }
    }

    /// Generates one day's records into `out`, sorted by `(t, id)`.
    ///
    /// `raw_base` is the pre-sort id of the day's first record (the global
    /// generation counter). Days occupy disjoint time ranges, so a global
    /// sort of the whole trace equals the concatenation of these per-day
    /// sorts — which is what lets [`Self::stream`] emit windows lazily while
    /// staying byte-identical to [`Self::generate`].
    fn generate_day(
        &self,
        global: &WeightedAses,
        day: u64,
        raw_base: u32,
        rng: &mut StdRng,
        dists: &GenDists,
        out: &mut Vec<CallRecord>,
    ) {
        for k in 0..self.config.calls_per_day {
            let call_id = CallId(raw_base + k as u32);
            let (src_idx, t) = self.sample_caller_and_time(global, day, rng);
            let dst_idx = self.sample_callee(src_idx, rng);

            let src = &self.world.ases[src_idx];
            let dst = &self.world.ases[dst_idx];

            let wireless = rng.random::<f64>() < self.config.wireless_fraction;
            let access_extra = if wireless {
                AccessExtra {
                    rtt_ms: rng.random_range(2.0..15.0),
                    loss_pct: dists.wifi_loss.sample(rng).min(5.0),
                    jitter_ms: dists.wifi_jitter.sample(rng).min(40.0),
                }
            } else {
                AccessExtra {
                    rtt_ms: rng.random_range(0.0..2.0),
                    loss_pct: 0.0,
                    jitter_ms: rng.random_range(0.0..0.5),
                }
            };

            let path = self
                .world
                .perf()
                .sample_option(src.id, dst.id, RelayOption::Direct, t, rng);
            let direct_metrics = access_extra.apply(&path);

            let caller = self.sample_user(src_idx, rng);
            let callee = self.sample_user(dst_idx, rng);
            let rating = self.config.rating.maybe_rate(&direct_metrics, rng);

            out.push(CallRecord {
                id: call_id,
                t,
                src_as: src.id,
                dst_as: dst.id,
                src_country: src.country,
                dst_country: dst.country,
                caller,
                callee,
                wireless,
                duration_s: dists.duration.sample(rng).clamp(5.0, 7_200.0),
                access_extra,
                direct_metrics,
                rating,
            });
        }
        out.sort_by_key(|r| (r.t, r.id));
    }

    /// Generates the full trace. Deterministic in `(world, config, seed)`,
    /// and byte-identical to collecting [`Self::stream`] — both run the same
    /// per-day core.
    pub fn generate(&self) -> Trace {
        let mut stream = self.stream();
        let mut records = Vec::with_capacity(usize::try_from(self.record_count()).unwrap_or(0));
        while let Some(r) = stream.next_record() {
            records.push(r);
        }
        Trace::new(self.trace_seed, self.effective_days(), records)
    }

    /// Lazy generation: yields the trace one record at a time, holding one
    /// day's buffer resident. The record sequence is byte-identical to
    /// [`Self::generate`] — see [`Self::generate_day`] for why.
    pub fn stream(&self) -> GenRecords<'_> {
        GenRecords {
            generator: self,
            rng: StdRng::seed_from_u64(seed::derive(self.trace_seed, "workload")),
            dists: self.dists(),
            days: self.effective_days(),
            next_day: 0,
            next_id: 0,
            raw_base: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Picks a caller AS and a start time inside `day`, biased toward the
    /// caller's local daytime/evening (rejection sampling on the activity
    /// curve).
    fn sample_caller_and_time(
        &self,
        global: &WeightedAses,
        day: u64,
        rng: &mut StdRng,
    ) -> (usize, SimTime) {
        loop {
            let src_idx = global.sample(rng);
            let secs = rng.random_range(0..SECS_PER_DAY);
            let t = SimTime(day * SECS_PER_DAY + secs);
            let local = self.world.ases[src_idx].pos.local_hour(t.hour_of_day());
            // Activity: low at night, rising through the day, peak ~20:00.
            let activity =
                0.15 + 0.85 * 0.5 * (1.0 + ((local - 17.0) / 24.0 * std::f64::consts::TAU).cos());
            if rng.random::<f64>() < activity {
                return (src_idx, t);
            }
        }
    }

    /// Picks a callee AS honoring the international / inter-AS mix.
    fn sample_callee(&self, src_idx: usize, rng: &mut StdRng) -> usize {
        let src_country = self.world.ases[src_idx].country.index();
        let want_intl = rng.random::<f64>() < self.config.international_fraction;
        if want_intl {
            if let Some(s) = &self.intl_by_country[src_country] {
                return s.sample(rng);
            }
        }
        // Domestic: decide intra-AS vs other AS in the same country so the
        // overall inter-AS fraction comes out right:
        // P(intra) = (1 − inter_as) / (1 − international).
        let p_intra = ((1.0 - self.config.inter_as_fraction)
            / (1.0 - self.config.international_fraction))
            .clamp(0.0, 1.0);
        if rng.random::<f64>() < p_intra {
            return src_idx;
        }
        if let Some(s) = &self.by_country[src_country] {
            // Rejection: try to land on a different AS in the country.
            for _ in 0..8 {
                let cand = s.sample(rng);
                if cand != src_idx {
                    return cand;
                }
            }
        }
        src_idx // single-AS country: intra-AS call
    }

    /// Draws a user id within an AS (Zipf-ish popularity).
    fn sample_user(&self, as_idx: usize, rng: &mut StdRng) -> ClientId {
        let pool = self.users_per_as[as_idx];
        // Zipf via inverse-power transform of a uniform draw.
        let u: f64 = rng.random::<f64>().max(1e-9);
        let rank = ((pool as f64).powf(u) - 1.0).floor() as u32;
        // Namespace users by AS: 20 bits of AS, 12 bits of rank would limit
        // pools; use multiplication instead.
        ClientId(as_idx as u32 * 100_000 + rank.min(pool - 1))
    }

    /// The world this generator draws from.
    pub fn world(&self) -> &World {
        self.world
    }

    /// The AS an id refers to (test helper / analysis use).
    pub fn as_of_user(user: ClientId) -> AsId {
        AsId(user.0 / 100_000)
    }
}

/// Sampling distributions shared by every generated day.
struct GenDists {
    duration: LogNormal<f64>,
    wifi_jitter: LogNormal<f64>,
    wifi_loss: Gamma<f64>,
}

/// Lazy record stream over trace generation: one day's buffer resident at a
/// time, record sequence byte-identical to [`TraceGenerator::generate`].
/// Produced by [`TraceGenerator::stream`]; the streaming replay pipeline
/// (see [`crate::stream`]) consumes it without materializing the trace.
pub struct GenRecords<'a> {
    generator: &'a TraceGenerator<'a>,
    rng: StdRng,
    dists: GenDists,
    days: u64,
    next_day: u64,
    /// Next chronological (post-sort) id to hand out.
    next_id: u32,
    /// Pre-sort id of the next day's first record.
    raw_base: u32,
    buf: Vec<CallRecord>,
    pos: usize,
}

impl GenRecords<'_> {
    /// Seed of the trace being generated.
    pub fn seed(&self) -> u64 {
        self.generator.trace_seed
    }

    /// Trace horizon in days.
    pub fn days(&self) -> u64 {
        self.days
    }

    /// Total records this stream will yield.
    pub fn record_count(&self) -> u64 {
        self.generator.record_count()
    }

    /// Generates the next day into the buffer. Returns false once the
    /// horizon is exhausted (or the world has no callable ASes).
    fn refill(&mut self) -> bool {
        let Some(global) = self.generator.global.as_ref() else {
            return false;
        };
        if self.next_day >= self.days {
            return false;
        }
        self.buf.clear();
        self.pos = 0;
        let day = self.next_day;
        self.next_day += 1;
        self.generator.generate_day(
            global,
            day,
            self.raw_base,
            &mut self.rng,
            &self.dists,
            &mut self.buf,
        );
        self.raw_base += self.generator.config.calls_per_day as u32;
        // Re-number chronologically: days are disjoint in time, so a running
        // counter reproduces the global post-sort renumbering.
        for r in &mut self.buf {
            r.id = CallId(self.next_id);
            self.next_id += 1;
        }
        true
    }

    /// The next record in chronological order; `None` once the horizon is
    /// exhausted.
    pub fn next_record(&mut self) -> Option<CallRecord> {
        while self.pos >= self.buf.len() {
            if !self.refill() {
                return None;
            }
        }
        let r = self.buf[self.pos].clone();
        self.pos += 1;
        Some(r)
    }
}

impl Iterator for GenRecords<'_> {
    type Item = CallRecord;

    fn next(&mut self) -> Option<CallRecord> {
        self.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_netsim::WorldConfig;

    fn gen_trace(seed: u64) -> Trace {
        let world = World::generate(&WorldConfig::tiny(), seed);
        TraceGenerator::new(&world, TraceConfig::tiny(), seed).generate()
    }

    #[test]
    fn trace_is_deterministic() {
        let t1 = gen_trace(5);
        let t2 = gen_trace(5);
        assert_eq!(t1.records.len(), t2.records.len());
        assert_eq!(t1.records[10], t2.records[10]);
    }

    #[test]
    fn trace_is_chronological_with_dense_ids() {
        let t = gen_trace(6);
        assert!(t.is_chronological());
        for (i, r) in t.records.iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
    }

    #[test]
    fn composition_fractions_match_targets() {
        let world = World::generate(&WorldConfig::small(), 3);
        let trace = TraceGenerator::new(&world, TraceConfig::small(), 3).generate();
        let n = trace.len() as f64;
        let intl = trace
            .records
            .iter()
            .filter(|r| r.is_international())
            .count() as f64
            / n;
        let inter_as = trace.records.iter().filter(|r| r.is_inter_as()).count() as f64 / n;
        let wireless = trace.records.iter().filter(|r| r.wireless).count() as f64 / n;
        assert!((intl - 0.466).abs() < 0.03, "international fraction {intl}");
        assert!(
            (inter_as - 0.807).abs() < 0.04,
            "inter-AS fraction {inter_as}"
        );
        assert!(
            (wireless - 0.83).abs() < 0.02,
            "wireless fraction {wireless}"
        );
    }

    #[test]
    fn countries_match_as_assignment() {
        let world = World::generate(&WorldConfig::tiny(), 8);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 8).generate();
        for r in trace.records.iter().take(500) {
            assert_eq!(world.ases[r.src_as.index()].country, r.src_country);
            assert_eq!(world.ases[r.dst_as.index()].country, r.dst_country);
        }
    }

    #[test]
    fn durations_and_metrics_are_sane() {
        let t = gen_trace(9);
        for r in &t.records {
            assert!(r.duration_s >= 5.0 && r.duration_s <= 7_200.0);
            assert!(r.direct_metrics.is_finite());
            assert!(r.direct_metrics.rtt_ms > 0.0);
        }
    }

    #[test]
    fn most_calls_are_rated_under_default_config() {
        // TraceConfig defaults set rating_probability = 1.0.
        let t = gen_trace(10);
        let rated = t.records.iter().filter(|r| r.rating.is_some()).count();
        assert_eq!(rated, t.len());
    }

    #[test]
    fn user_ids_map_back_to_as() {
        let world = World::generate(&WorldConfig::tiny(), 4);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 4).generate();
        for r in trace.records.iter().take(200) {
            assert_eq!(TraceGenerator::as_of_user(r.caller), r.src_as);
            assert_eq!(TraceGenerator::as_of_user(r.callee), r.dst_as);
        }
    }

    #[test]
    fn stream_matches_generate_exactly() {
        let world = World::generate(&WorldConfig::tiny(), 11);
        let generator = TraceGenerator::new(&world, TraceConfig::tiny(), 11);
        let materialized = generator.generate();
        let streamed: Vec<CallRecord> = generator.stream().collect();
        assert_eq!(streamed.len() as u64, generator.record_count());
        assert_eq!(streamed, materialized.records);
    }

    #[test]
    fn arrivals_follow_diurnal_cycle() {
        let world = World::generate(&WorldConfig::tiny(), 12);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 12).generate();
        // Count arrivals by caller-local hour: evening (16..24) should beat
        // night (0..8).
        let mut evening = 0usize;
        let mut night = 0usize;
        for r in &trace.records {
            let local = world.ases[r.src_as.index()]
                .pos
                .local_hour(r.t.hour_of_day());
            if (16.0..24.0).contains(&local) {
                evening += 1;
            } else if local < 8.0 {
                night += 1;
            }
        }
        assert!(
            evening > night * 2,
            "evening {evening} vs night {night} arrivals"
        );
    }
}
