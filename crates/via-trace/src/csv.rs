//! CSV export/import for call traces.
//!
//! JSON Lines (see [`crate::io`]) is the native format; CSV exists for
//! interop with the usual analysis stack (pandas, R, DuckDB, spreadsheets).
//! The writer emits one row per call with a fixed header; the reader accepts
//! the same layout back. No external CSV dependency: the format here is
//! strictly numeric-plus-bool, so quoting rules never trigger.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use via_model::ids::{AsId, CallId, ClientId, CountryId};
use via_model::metrics::PathMetrics;
use via_model::time::SimTime;

use crate::record::{AccessExtra, CallRecord, Trace};

/// The column header written and expected.
pub const CSV_HEADER: &str = "call_id,t_secs,src_as,dst_as,src_country,dst_country,caller,callee,\
wireless,duration_s,extra_rtt_ms,extra_loss_pct,extra_jitter_ms,rtt_ms,loss_pct,jitter_ms,rating";

/// CSV persistence errors.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Wrong or missing header.
    BadHeader(String),
    /// A row failed to parse (line number, message).
    BadRow(usize, String),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "CSV I/O error: {e}"),
            CsvError::BadHeader(h) => write!(f, "unexpected CSV header: {h}"),
            CsvError::BadRow(line, msg) => write!(f, "CSV row {line}: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a trace as CSV.
pub fn write_csv(trace: &Trace, path: &Path) -> Result<(), CsvError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{CSV_HEADER}")?;
    for r in &trace.records {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.id.0,
            r.t.secs(),
            r.src_as.0,
            r.dst_as.0,
            r.src_country.0,
            r.dst_country.0,
            r.caller.0,
            r.callee.0,
            r.wireless,
            r.duration_s,
            r.access_extra.rtt_ms,
            r.access_extra.loss_pct,
            r.access_extra.jitter_ms,
            r.direct_metrics.rtt_ms,
            r.direct_metrics.loss_pct,
            r.direct_metrics.jitter_ms,
            r.rating.map(|x| x.to_string()).unwrap_or_default(),
        )?;
    }
    w.flush()?;
    Ok(())
}

fn field<'a, T: std::str::FromStr>(
    fields: &'a [&'a str],
    idx: usize,
    line: usize,
) -> Result<T, CsvError> {
    fields
        .get(idx)
        .ok_or_else(|| CsvError::BadRow(line, format!("missing column {idx}")))?
        .parse()
        .map_err(|_| CsvError::BadRow(line, format!("unparsable column {idx}")))
}

/// Reads a trace written by [`write_csv`]. The `seed` and `days` provenance
/// fields are not carried by CSV; they are reconstructed as 0 and the max
/// observed day respectively.
pub fn read_csv(path: &Path) -> Result<Trace, CsvError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| CsvError::BadHeader("<empty file>".into()))??;
    if header.trim() != CSV_HEADER {
        return Err(CsvError::BadHeader(header));
    }
    let mut records = Vec::new();
    let mut max_day = 0u64;
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        let lineno = i + 2;
        let t = SimTime(field(&f, 1, lineno)?);
        max_day = max_day.max(t.day() + 1);
        let rating_raw: &str = f
            .get(16)
            .ok_or_else(|| CsvError::BadRow(lineno, "missing rating column".into()))?;
        let rating = if rating_raw.is_empty() {
            None
        } else {
            Some(
                rating_raw
                    .parse()
                    .map_err(|_| CsvError::BadRow(lineno, "bad rating".into()))?,
            )
        };
        records.push(CallRecord {
            id: CallId(field(&f, 0, lineno)?),
            t,
            src_as: AsId(field(&f, 2, lineno)?),
            dst_as: AsId(field(&f, 3, lineno)?),
            src_country: CountryId(field(&f, 4, lineno)?),
            dst_country: CountryId(field(&f, 5, lineno)?),
            caller: ClientId(field(&f, 6, lineno)?),
            callee: ClientId(field(&f, 7, lineno)?),
            wireless: field(&f, 8, lineno)?,
            duration_s: field(&f, 9, lineno)?,
            access_extra: AccessExtra {
                rtt_ms: field(&f, 10, lineno)?,
                loss_pct: field(&f, 11, lineno)?,
                jitter_ms: field(&f, 12, lineno)?,
            },
            direct_metrics: PathMetrics::new(
                field(&f, 13, lineno)?,
                field(&f, 14, lineno)?,
                field(&f, 15, lineno)?,
            ),
            rating,
        });
    }
    Ok(Trace::new(0, max_day, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceConfig, TraceGenerator};
    use via_netsim::{World, WorldConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("via-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_analysis_statistics() {
        let world = World::generate(&WorldConfig::tiny(), 31);
        let mut cfg = TraceConfig::tiny();
        cfg.calls_per_day = 200;
        let trace = TraceGenerator::new(&world, cfg, 31).generate();
        let path = tmp("trace.csv");
        write_csv(&trace, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.records.len(), trace.records.len());
        assert_eq!(back.days, trace.days);
        // Records round-trip exactly except provenance.
        for (a, b) in trace.records.iter().zip(&back.records) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.t, b.t);
            assert_eq!(a.rating, b.rating);
            assert!((a.direct_metrics.rtt_ms - b.direct_metrics.rtt_ms).abs() < 1e-9);
        }
        let s1 = crate::analysis::dataset_summary(&trace);
        let s2 = crate::analysis::dataset_summary(&back);
        assert_eq!(s1.users, s2.users);
        assert_eq!(s1.international_fraction, s2.international_fraction);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_header() {
        let path = tmp("bad_header.csv");
        std::fs::write(&path, "a,b,c\n1,2,3\n").unwrap();
        assert!(matches!(read_csv(&path), Err(CsvError::BadHeader(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reports_bad_rows_with_line_numbers() {
        let path = tmp("bad_row.csv");
        std::fs::write(&path, format!("{CSV_HEADER}\nnot,nearly,enough\n")).unwrap();
        match read_csv(&path) {
            Err(CsvError::BadRow(line, _)) => assert_eq!(line, 2),
            other => panic!("expected BadRow, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_rating_roundtrips_as_none() {
        let path = tmp("no_rating.csv");
        std::fs::write(
            &path,
            format!("{CSV_HEADER}\n0,10,1,2,0,1,5,6,true,60.0,1.0,0.1,0.5,100.0,0.5,3.0,\n"),
        )
        .unwrap();
        let trace = read_csv(&path).unwrap();
        assert_eq!(trace.records[0].rating, None);
        assert!(trace.records[0].wireless);
        std::fs::remove_file(&path).ok();
    }
}
