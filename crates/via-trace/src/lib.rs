//! Call workload generation, trace records, and the paper's §2 dataset
//! analysis.
//!
//! * [`record`] — [`record::CallRecord`] / [`record::Trace`]: one row per
//!   call with endpoints, timing, wireless flag, default-path metrics, and an
//!   optional user rating.
//! * [`workload`] — [`workload::TraceGenerator`]: synthesizes chronological
//!   traces over a `via-netsim` world with the paper's composition (46.6 %
//!   international, 80.7 % inter-AS, 83 % wireless, diurnal arrivals).
//! * [`analysis`] — every statistic of §2: Table 1, the PCR curves of
//!   Figure 1, metric CDFs of Figure 2, pairwise correlations of Figure 3,
//!   international/domestic and per-country PNR of Figure 4, worst-AS-pair
//!   concentration of Figure 5, and the persistence/prevalence analysis of
//!   Figure 6.
//! * [`io`] — JSON Lines persistence for traces; [`csv`] — CSV interop for
//!   the usual data-analysis stack.
//!
//! ```
//! use via_netsim::{World, WorldConfig};
//! use via_trace::workload::{TraceConfig, TraceGenerator};
//! use via_trace::analysis;
//!
//! let world = World::generate(&WorldConfig::tiny(), 1);
//! let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 1).generate();
//! let summary = analysis::dataset_summary(&trace);
//! assert_eq!(summary.calls, trace.len());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod csv;
pub mod io;
pub mod record;
pub mod workload;

pub use record::{AccessExtra, CallRecord, Trace};
pub use workload::{TraceConfig, TraceGenerator};
