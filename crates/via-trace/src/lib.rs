//! Call workload generation, trace records, and the paper's §2 dataset
//! analysis.
//!
//! * [`record`] — [`record::CallRecord`] / [`record::Trace`]: one row per
//!   call with endpoints, timing, wireless flag, default-path metrics, and an
//!   optional user rating.
//! * [`workload`] — [`workload::TraceGenerator`]: synthesizes chronological
//!   traces over a `via-netsim` world with the paper's composition (46.6 %
//!   international, 80.7 % inter-AS, 83 % wireless, diurnal arrivals).
//! * [`analysis`] — every statistic of §2: Table 1, the PCR curves of
//!   Figure 1, metric CDFs of Figure 2, pairwise correlations of Figure 3,
//!   international/domestic and per-country PNR of Figure 4, worst-AS-pair
//!   concentration of Figure 5, and the persistence/prevalence analysis of
//!   Figure 6.
//! * [`io`] — JSON Lines persistence for traces; [`binfmt`] — compact binary
//!   `.vbt` persistence; [`csv`] — CSV interop for the usual data-analysis
//!   stack.
//! * [`stream`] — the streaming window pipeline: any source (materialized
//!   trace, JSONL, binary, or lazy generation) re-windowed into bounded
//!   chronological batches for paper-scale replay in bounded memory.
//!
//! ```
//! use via_netsim::{World, WorldConfig};
//! use via_trace::workload::{TraceConfig, TraceGenerator};
//! use via_trace::analysis;
//!
//! let world = World::generate(&WorldConfig::tiny(), 1);
//! let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 1).generate();
//! let summary = analysis::dataset_summary(&trace);
//! assert_eq!(summary.calls, trace.len());
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod binfmt;
pub mod csv;
pub mod error;
pub mod io;
pub mod record;
pub mod stream;
pub mod workload;

pub use error::TraceError;
pub use record::{AccessExtra, CallRecord, Trace};
pub use stream::{RecordSource, StreamError, WindowBatch, WindowStream};
pub use workload::{TraceConfig, TraceGenerator};

use std::path::Path;

/// Loads a trace, dispatching on the path's extension: `.jsonl` (the native
/// text format, see [`io`]), `.vbt` (binary, see [`binfmt`]), or `.csv`
/// (interop, see [`csv`]).
///
/// # Errors
/// [`TraceError::UnknownFormat`] for any other extension, or the underlying
/// format's error on a read failure.
pub fn load_trace(path: &Path) -> Result<Trace, TraceError> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("jsonl") => Ok(io::read_jsonl(path)?),
        Some("vbt") => Ok(binfmt::read_binary(path)?),
        Some("csv") => Ok(csv::read_csv(path)?),
        _ => Err(TraceError::UnknownFormat(path.to_path_buf())),
    }
}

/// Saves a trace, dispatching on the path's extension like [`load_trace`].
///
/// # Errors
/// [`TraceError::UnknownFormat`] for unrecognized extensions, or the
/// underlying format's error on a write failure.
pub fn save_trace(trace: &Trace, path: &Path) -> Result<(), TraceError> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("jsonl") => Ok(io::write_jsonl(trace, path)?),
        Some("vbt") => Ok(binfmt::write_binary(trace, path)?),
        Some("csv") => Ok(csv::write_csv(trace, path)?),
        _ => Err(TraceError::UnknownFormat(path.to_path_buf())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use via_netsim::{World, WorldConfig};

    #[test]
    fn load_save_dispatch_on_extension() {
        let world = World::generate(&WorldConfig::tiny(), 41);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 41).generate();
        let dir = std::env::temp_dir().join("via-trace-dispatch-test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["t.jsonl", "t.vbt", "t.csv"] {
            let path = dir.join(name);
            save_trace(&trace, &path).unwrap();
            let back = load_trace(&path).unwrap();
            assert_eq!(back.records.len(), trace.records.len());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unknown_extension_is_rejected() {
        let trace = Trace::new(0, 0, Vec::new());
        let path = std::env::temp_dir().join("t.parquet");
        assert!(matches!(
            save_trace(&trace, &path),
            Err(TraceError::UnknownFormat(_))
        ));
        assert!(matches!(
            load_trace(&path),
            Err(TraceError::UnknownFormat(_))
        ));
    }

    #[test]
    fn errors_convert_and_display() {
        let err: TraceError = io::TraceIoError::MissingHeader.into();
        assert!(err.to_string().contains("header"));
        let err: TraceError = csv::CsvError::BadHeader("x".into()).into();
        assert!(err.to_string().contains("header"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
