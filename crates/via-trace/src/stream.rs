//! Streaming window pipeline: chronologically-contiguous call batches with
//! bounded lookahead, independent of how the trace is stored.
//!
//! The replay engine (via-core) advances one control window at a time; only
//! the window being processed needs to be resident. [`WindowStream`] turns
//! any [`RecordSource`] — a materialized [`Trace`], a JSONL file, a binary
//! `.vbt` file, or the trace generator itself — into a sequence of
//! [`WindowBatch`]es, holding at most one window plus a single lookahead
//! record in memory. Batch buffers are recycled through the stream
//! ([`WindowStream::recycle`]) so steady-state replay allocates nothing per
//! window.
//!
//! Chronology is validated incrementally as records flow: replay depends on
//! nondecreasing timestamps, and a streaming consumer cannot afford the
//! up-front O(n) scan a materialized trace gets. An out-of-order record is a
//! hard error ([`StreamError::NotChronological`]), never silently re-sorted.

use std::path::Path;

use via_model::time::{SimTime, Window, WindowLen};

use crate::binfmt::{BinError, BinHeader, BinReader};
use crate::error::TraceError;
use crate::io::{JsonlReader, TraceIoError};
use crate::record::{CallRecord, Trace};
use crate::workload::GenRecords;

/// Batch buffers kept for reuse; beyond this, recycled buffers are dropped.
const SPARE_BUFFERS: usize = 4;

/// Errors arising from streaming a trace.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying JSONL source failed.
    Jsonl(TraceIoError),
    /// The underlying binary source failed.
    Binary(BinError),
    /// A record arrived with a timestamp before its predecessor's. Replay
    /// semantics require chronological order; the stream stops here.
    NotChronological {
        /// Absolute index of the offending record.
        index: u64,
        /// Timestamp of the preceding record.
        prev_t: SimTime,
        /// The offending (earlier) timestamp.
        next_t: SimTime,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Jsonl(e) => write!(f, "trace stream: {e}"),
            StreamError::Binary(e) => write!(f, "trace stream: {e}"),
            StreamError::NotChronological {
                index,
                prev_t,
                next_t,
            } => write!(
                f,
                "trace stream is not chronological: record {index} at {next_t} follows {prev_t}"
            ),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Jsonl(e) => Some(e),
            StreamError::Binary(e) => Some(e),
            StreamError::NotChronological { .. } => None,
        }
    }
}

impl From<TraceIoError> for StreamError {
    fn from(e: TraceIoError) -> Self {
        StreamError::Jsonl(e)
    }
}

impl From<BinError> for StreamError {
    fn from(e: BinError) -> Self {
        StreamError::Binary(e)
    }
}

/// A source of chronologically ordered call records, consumed one at a time.
///
/// Implementations exist for materialized traces ([`TraceRecords`]), JSONL
/// files ([`JsonlSource`]), binary files ([`BinSource`]), and lazy generation
/// ([`GenRecords`]). The trait carries the trace provenance (seed, horizon)
/// so a streaming consumer can seed its per-call random streams without ever
/// seeing the whole trace.
pub trait RecordSource {
    /// The next record, or `None` at the end of the source.
    fn next_record(&mut self) -> Result<Option<CallRecord>, StreamError>;

    /// Seed the trace was generated with.
    fn seed(&self) -> u64;

    /// Trace horizon in days.
    fn days(&self) -> u64;

    /// Total records this source will yield, when known up front.
    fn size_hint(&self) -> Option<u64> {
        None
    }

    /// Bytes consumed from backing storage so far; zero for sources that
    /// are not file-backed.
    fn bytes_read(&self) -> u64 {
        0
    }
}

/// Record source over a materialized [`Trace`] — the adapter that lets the
/// streamed replay path and the classic in-memory path share one engine.
pub struct TraceRecords<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl<'a> TraceRecords<'a> {
    /// Streams `trace`'s records in order.
    pub fn new(trace: &'a Trace) -> Self {
        TraceRecords { trace, pos: 0 }
    }
}

impl RecordSource for TraceRecords<'_> {
    fn next_record(&mut self) -> Result<Option<CallRecord>, StreamError> {
        let r = self.trace.records.get(self.pos).cloned();
        if r.is_some() {
            self.pos += 1;
        }
        Ok(r)
    }

    fn seed(&self) -> u64 {
        self.trace.seed
    }

    fn days(&self) -> u64 {
        self.trace.days
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.trace.records.len() as u64)
    }
}

/// Record source over a JSONL trace file: one line resident at a time.
pub struct JsonlSource {
    reader: JsonlReader,
}

impl JsonlSource {
    /// Opens a JSONL trace for streaming.
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        Ok(JsonlSource {
            reader: JsonlReader::open(path)?,
        })
    }
}

impl RecordSource for JsonlSource {
    fn next_record(&mut self) -> Result<Option<CallRecord>, StreamError> {
        self.reader.next_record().map_err(StreamError::Jsonl)
    }

    fn seed(&self) -> u64 {
        self.reader.header().seed
    }

    fn days(&self) -> u64 {
        self.reader.header().days
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.reader.header().records as u64)
    }

    fn bytes_read(&self) -> u64 {
        self.reader.bytes_read()
    }
}

/// Record source over a binary `.vbt` trace file: one on-disk frame resident
/// at a time, decoded into a buffer reused across frames.
pub struct BinSource {
    reader: BinReader,
    buf: Vec<CallRecord>,
    pos: usize,
}

impl BinSource {
    /// Opens a binary trace for streaming (header verified).
    pub fn open(path: &Path) -> Result<Self, BinError> {
        Ok(BinSource {
            reader: BinReader::open(path)?,
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// The file's header.
    pub fn header(&self) -> &BinHeader {
        self.reader.header()
    }
}

impl RecordSource for BinSource {
    fn next_record(&mut self) -> Result<Option<CallRecord>, StreamError> {
        while self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.reader.next_frame(&mut self.buf)?.is_none() {
                return Ok(None);
            }
        }
        let r = self.buf[self.pos].clone();
        self.pos += 1;
        Ok(Some(r))
    }

    fn seed(&self) -> u64 {
        self.reader.header().seed
    }

    fn days(&self) -> u64 {
        self.reader.header().days
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.reader.header().records)
    }

    fn bytes_read(&self) -> u64 {
        self.reader.bytes_read()
    }
}

impl RecordSource for GenRecords<'_> {
    fn next_record(&mut self) -> Result<Option<CallRecord>, StreamError> {
        Ok(GenRecords::next_record(self))
    }

    fn seed(&self) -> u64 {
        GenRecords::seed(self)
    }

    fn days(&self) -> u64 {
        GenRecords::days(self)
    }

    fn size_hint(&self) -> Option<u64> {
        Some(self.record_count())
    }
}

/// A file-backed record source, dispatched by extension: `.jsonl` or `.vbt`.
pub enum FileSource {
    /// JSON Lines trace.
    Jsonl(JsonlSource),
    /// Binary trace.
    Binary(BinSource),
}

impl FileSource {
    /// Opens a trace file for streaming, picking the format from the
    /// extension.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl") => Ok(FileSource::Jsonl(JsonlSource::open(path)?)),
            Some("vbt") => Ok(FileSource::Binary(BinSource::open(path)?)),
            _ => Err(TraceError::UnknownFormat(path.to_path_buf())),
        }
    }
}

impl RecordSource for FileSource {
    fn next_record(&mut self) -> Result<Option<CallRecord>, StreamError> {
        match self {
            FileSource::Jsonl(s) => s.next_record(),
            FileSource::Binary(s) => s.next_record(),
        }
    }

    fn seed(&self) -> u64 {
        match self {
            FileSource::Jsonl(s) => s.seed(),
            FileSource::Binary(s) => s.seed(),
        }
    }

    fn days(&self) -> u64 {
        match self {
            FileSource::Jsonl(s) => s.days(),
            FileSource::Binary(s) => s.days(),
        }
    }

    fn size_hint(&self) -> Option<u64> {
        match self {
            FileSource::Jsonl(s) => s.size_hint(),
            FileSource::Binary(s) => s.size_hint(),
        }
    }

    fn bytes_read(&self) -> u64 {
        match self {
            FileSource::Jsonl(s) => s.bytes_read(),
            FileSource::Binary(s) => s.bytes_read(),
        }
    }
}

/// One control window's worth of contiguous records.
#[derive(Debug)]
pub struct WindowBatch {
    /// The control window every record in this batch falls into.
    pub window: Window,
    /// Absolute (trace-order) index of the first record in the batch.
    pub base: u64,
    /// The records, in chronological order.
    pub records: Vec<CallRecord>,
}

/// Re-windows a record stream into chronologically-contiguous batches, one
/// control window per batch. Empty windows (no calls) yield no batch — the
/// consumer sees the gap in [`WindowBatch::window`] indices.
///
/// Memory: one batch under construction, one lookahead record (the first
/// record of the *next* window, which reveals the current window's end), and
/// up to [`SPARE_BUFFERS`] recycled buffers.
pub struct WindowStream<S> {
    source: S,
    window_len: WindowLen,
    pending: Option<CallRecord>,
    last_t: Option<SimTime>,
    next_base: u64,
    /// Records pulled from the source so far (for error positions).
    pulled: u64,
    spare: Vec<Vec<CallRecord>>,
    done: bool,
}

impl<S: RecordSource> WindowStream<S> {
    /// Streams `source` re-windowed by `window_len`.
    pub fn new(source: S, window_len: WindowLen) -> Self {
        WindowStream {
            source,
            window_len,
            pending: None,
            last_t: None,
            next_base: 0,
            pulled: 0,
            spare: Vec::new(),
            done: false,
        }
    }

    /// The underlying source (e.g. to read `bytes_read` after streaming).
    pub fn source(&self) -> &S {
        &self.source
    }

    /// The control window length batches are cut to.
    pub fn window_len(&self) -> WindowLen {
        self.window_len
    }

    /// Records yielded so far across all batches.
    pub fn records_yielded(&self) -> u64 {
        self.next_base
    }

    /// Returns a batch's buffer to the stream for reuse by a later
    /// [`Self::next_batch`], keeping steady-state streaming allocation-free.
    pub fn recycle(&mut self, batch: WindowBatch) {
        let mut buf = batch.records;
        if self.spare.len() < SPARE_BUFFERS {
            buf.clear();
            self.spare.push(buf);
        }
    }

    /// The next window's batch, or `None` once the source is exhausted.
    /// Verifies chronology incrementally; an out-of-order record is an error.
    pub fn next_batch(&mut self) -> Result<Option<WindowBatch>, StreamError> {
        if self.done && self.pending.is_none() {
            return Ok(None);
        }
        let first = match self.pending.take() {
            Some(r) => r,
            None => match self.pull()? {
                Some(r) => r,
                None => return Ok(None),
            },
        };
        let window = self.window_len.window_of(first.t);
        let mut records = self.spare.pop().unwrap_or_default();
        records.push(first);
        while let Some(r) = self.pull()? {
            if self.window_len.window_of(r.t).index != window.index {
                self.pending = Some(r);
                break;
            }
            records.push(r);
        }
        let base = self.next_base;
        self.next_base += records.len() as u64;
        Ok(Some(WindowBatch {
            window,
            base,
            records,
        }))
    }

    /// Pulls one record from the source, enforcing chronological order.
    fn pull(&mut self) -> Result<Option<CallRecord>, StreamError> {
        if self.done {
            return Ok(None);
        }
        match self.source.next_record()? {
            None => {
                self.done = true;
                Ok(None)
            }
            Some(r) => {
                if let Some(prev_t) = self.last_t {
                    if r.t < prev_t {
                        return Err(StreamError::NotChronological {
                            index: self.pulled,
                            prev_t,
                            next_t: r.t,
                        });
                    }
                }
                self.last_t = Some(r.t);
                self.pulled += 1;
                Ok(Some(r))
            }
        }
    }
}

impl<S: RecordSource> Iterator for WindowStream<S> {
    type Item = Result<WindowBatch, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_batch().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binfmt::write_binary_framed;
    use crate::io::write_jsonl;
    use crate::workload::{TraceConfig, TraceGenerator};
    use via_netsim::{World, WorldConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("via-trace-stream-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn collect_batches<S: RecordSource>(
        mut stream: WindowStream<S>,
    ) -> Vec<(u64, u64, Vec<CallRecord>)> {
        let mut out = Vec::new();
        while let Some(b) = stream.next_batch().unwrap() {
            out.push((b.window.index, b.base, b.records));
        }
        out
    }

    #[test]
    fn windows_are_contiguous_and_complete() {
        let world = World::generate(&WorldConfig::tiny(), 17);
        let generator = TraceGenerator::new(&world, TraceConfig::tiny(), 17);
        let trace = generator.generate();
        let len = WindowLen::hours(6);
        let batches = collect_batches(WindowStream::new(TraceRecords::new(&trace), len));

        let mut reassembled = Vec::new();
        let mut next_base = 0u64;
        let mut last_window = None;
        for (window, base, records) in batches {
            assert_eq!(base, next_base, "batch bases must be contiguous");
            next_base += records.len() as u64;
            assert!(last_window.is_none_or(|w| w < window), "windows ascend");
            last_window = Some(window);
            for r in &records {
                assert_eq!(len.window_of(r.t).index, window);
            }
            reassembled.extend(records);
        }
        assert_eq!(reassembled, trace.records);
    }

    #[test]
    fn all_sources_yield_identical_windows() {
        let world = World::generate(&WorldConfig::tiny(), 18);
        let generator = TraceGenerator::new(&world, TraceConfig::tiny(), 18);
        let trace = generator.generate();
        let jsonl = tmp("sources.jsonl");
        let vbt = tmp("sources.vbt");
        write_jsonl(&trace, &jsonl).unwrap();
        // Odd on-disk framing: the stream must re-window to the control
        // period regardless of how frames were cut.
        write_binary_framed(&trace, &vbt, WindowLen::hours(7)).unwrap();

        let len = WindowLen::DAY;
        let from_trace = collect_batches(WindowStream::new(TraceRecords::new(&trace), len));
        let from_gen = collect_batches(WindowStream::new(generator.stream(), len));
        let from_jsonl =
            collect_batches(WindowStream::new(JsonlSource::open(&jsonl).unwrap(), len));
        let from_bin = collect_batches(WindowStream::new(BinSource::open(&vbt).unwrap(), len));
        let from_file = collect_batches(WindowStream::new(FileSource::open(&vbt).unwrap(), len));

        assert_eq!(from_trace, from_gen);
        assert_eq!(from_trace, from_jsonl);
        assert_eq!(from_trace, from_bin);
        assert_eq!(from_trace, from_file);
        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&vbt).ok();
    }

    #[test]
    fn non_chronological_source_is_rejected() {
        let world = World::generate(&WorldConfig::tiny(), 19);
        let mut trace = TraceGenerator::new(&world, TraceConfig::tiny(), 19).generate();
        trace.records.swap(5, 800);
        let trace = Trace::new(trace.seed, trace.days, trace.records);
        let mut stream = WindowStream::new(TraceRecords::new(&trace), WindowLen::DAY);
        let mut err = None;
        loop {
            match stream.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(err, Some(StreamError::NotChronological { .. })),
            "out-of-order records must fail loudly: {err:?}"
        );
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let world = World::generate(&WorldConfig::tiny(), 20);
        let generator = TraceGenerator::new(&world, TraceConfig::tiny(), 20);
        let mut stream = WindowStream::new(generator.stream(), WindowLen::DAY);
        let first = stream.next_batch().unwrap().unwrap();
        let expected_cap = first.records.capacity();
        let mut total = first.records.len();
        stream.recycle(first);
        while let Some(b) = stream.next_batch().unwrap() {
            assert!(
                b.records.capacity() >= expected_cap.min(b.records.len()),
                "recycled buffer should carry its capacity forward"
            );
            total += b.records.len();
            stream.recycle(b);
        }
        assert_eq!(total as u64, stream.records_yielded());
        assert_eq!(stream.records_yielded(), generator.record_count());
    }

    #[test]
    fn unknown_extension_is_rejected() {
        let Err(err) = FileSource::open(Path::new("/tmp/trace.parquet")) else {
            panic!("unknown extension must be rejected");
        };
        assert!(matches!(err, TraceError::UnknownFormat(_)));
    }
}
