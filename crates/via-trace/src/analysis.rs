//! The §2 dataset-analysis pipeline: every statistic the paper extracts from
//! its 430 M-call trace, computed over a synthetic [`Trace`].
//!
//! | paper artifact | function |
//! |---|---|
//! | Table 1 (dataset summary)          | [`dataset_summary`] |
//! | Figure 1 (PCR vs metrics)          | [`pcr_vs_metric`] |
//! | Figure 2 (metric CDFs)             | [`metric_cdf`] |
//! | Figure 3 (pairwise correlation)    | [`pairwise_metric_percentiles`] |
//! | Figure 4 (intl vs domestic, by country) | [`pnr_by_scope`], [`pnr_by_country`] |
//! | Figure 5 (worst AS pairs)          | [`worst_pair_concentration`] |
//! | Figure 6 (persistence/prevalence)  | [`temporal_patterns`] |

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use via_model::ids::{AsPair, CountryId};
use via_model::metrics::{Metric, Thresholds};
use via_model::stats::binning::{bin_percentiles, PercentileBin};
use via_model::stats::{bin_means, pearson, Bin, Cdf};
use via_model::time::WindowLen;
use via_quality::PnrReport;

use crate::record::Trace;

/// Table 1: dataset summary statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSummary {
    /// Total calls in the trace.
    pub calls: usize,
    /// Distinct users observed (callers and callees).
    pub users: usize,
    /// Distinct ASes observed.
    pub ases: usize,
    /// Distinct countries observed.
    pub countries: usize,
    /// Fraction of international calls.
    pub international_fraction: f64,
    /// Fraction of inter-AS calls.
    pub inter_as_fraction: f64,
    /// Fraction of calls with a wireless last hop.
    pub wireless_fraction: f64,
    /// Trace span in days.
    pub days: u64,
}

/// Computes Table 1 over a trace.
pub fn dataset_summary(trace: &Trace) -> DatasetSummary {
    let mut users = HashSet::new();
    let mut ases = HashSet::new();
    let mut countries = HashSet::new();
    let mut intl = 0usize;
    let mut inter_as = 0usize;
    let mut wireless = 0usize;
    for r in &trace.records {
        users.insert(r.caller);
        users.insert(r.callee);
        ases.insert(r.src_as);
        ases.insert(r.dst_as);
        countries.insert(r.src_country);
        countries.insert(r.dst_country);
        if r.is_international() {
            intl += 1;
        }
        if r.is_inter_as() {
            inter_as += 1;
        }
        if r.wireless {
            wireless += 1;
        }
    }
    let n = trace.len().max(1) as f64;
    DatasetSummary {
        calls: trace.len(),
        users: users.len(),
        ases: ases.len(),
        countries: countries.len(),
        international_fraction: intl as f64 / n,
        inter_as_fraction: inter_as as f64 / n,
        wireless_fraction: wireless as f64 / n,
        days: trace.days,
    }
}

/// Figure 1: poor-call-rate (fraction of ratings ≤ 2) per bin of a network
/// metric, plus the Pearson correlation between bin centers and PCR.
///
/// Only rated calls participate. `min_samples` mirrors the paper's ≥ 1000
/// calls-per-bin significance rule (scaled down for synthetic traces).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcrCurve {
    /// Metric the calls were binned by.
    pub metric: Metric,
    /// Populated bins: x = metric value, y = PCR (0–1).
    pub bins: Vec<Bin>,
    /// Pearson correlation of (bin center, PCR).
    pub correlation: Option<f64>,
}

/// Computes a Figure 1 panel for one metric.
pub fn pcr_vs_metric(
    trace: &Trace,
    metric: Metric,
    x_max: f64,
    n_bins: usize,
    min_samples: usize,
) -> PcrCurve {
    let points: Vec<(f64, f64)> = trace
        .records
        .iter()
        .filter_map(|r| {
            r.rating
                .map(|stars| (r.direct_metrics[metric], if stars <= 2 { 1.0 } else { 0.0 }))
        })
        .collect();
    let bins = bin_means(&points, 0.0, x_max, n_bins, min_samples);
    let series: Vec<(f64, f64)> = bins.iter().map(|b| (b.x_center, b.y_mean)).collect();
    PcrCurve {
        metric,
        bins,
        correlation: pearson(&series),
    }
}

/// Figure 2: the empirical CDF of one metric across default-path calls.
pub fn metric_cdf(trace: &Trace, metric: Metric) -> Option<Cdf> {
    Cdf::from_samples(trace.records.iter().map(|r| r.direct_metrics[metric]))
}

/// Figure 3: 10th/50th/90th percentiles of metric `y` within bins of metric
/// `x` — the pairwise-correlation panels.
pub fn pairwise_metric_percentiles(
    trace: &Trace,
    x: Metric,
    y: Metric,
    x_max: f64,
    n_bins: usize,
    min_samples: usize,
) -> Vec<PercentileBin> {
    let points: Vec<(f64, f64)> = trace
        .records
        .iter()
        .map(|r| (r.direct_metrics[x], r.direct_metrics[y]))
        .collect();
    bin_percentiles(
        &points,
        0.0,
        x_max,
        n_bins,
        min_samples,
        &[10.0, 50.0, 90.0],
    )
}

/// Figure 4a: PNR of international vs domestic calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopePnr {
    /// PNR over international calls.
    pub international: PnrReport,
    /// PNR over domestic calls.
    pub domestic: PnrReport,
    /// PNR over inter-AS calls.
    pub inter_as: PnrReport,
    /// PNR over intra-AS calls.
    pub intra_as: PnrReport,
}

/// Computes Figure 4a (and the inter/intra-AS variant mentioned in §2.3).
pub fn pnr_by_scope(trace: &Trace, thresholds: &Thresholds) -> ScopePnr {
    let part = |pred: &dyn Fn(&crate::record::CallRecord) -> bool| {
        PnrReport::from_calls(
            trace
                .records
                .iter()
                .filter(|r| pred(r))
                .map(|r| &r.direct_metrics),
            thresholds,
        )
    };
    ScopePnr {
        international: part(&|r| r.is_international()),
        domestic: part(&|r| !r.is_international()),
        inter_as: part(&|r| r.is_inter_as()),
        intra_as: part(&|r| !r.is_inter_as()),
    }
}

/// Figure 4b: PNR of international calls grouped by the country of one side,
/// sorted worst-first. Only countries with at least `min_calls` international
/// calls are reported.
pub fn pnr_by_country(
    trace: &Trace,
    thresholds: &Thresholds,
    min_calls: usize,
) -> Vec<(CountryId, PnrReport)> {
    let mut per_country: HashMap<CountryId, Vec<&via_model::PathMetrics>> = HashMap::new();
    for r in trace.records.iter().filter(|r| r.is_international()) {
        per_country
            .entry(r.src_country)
            .or_default()
            .push(&r.direct_metrics);
        per_country
            .entry(r.dst_country)
            .or_default()
            .push(&r.direct_metrics);
    }
    let mut out: Vec<(CountryId, PnrReport)> = per_country
        .into_iter()
        .filter(|(_, calls)| calls.len() >= min_calls)
        .map(|(c, calls)| (c, PnrReport::from_calls(calls, thresholds)))
        .collect();
    out.sort_by(|a, b| b.1.any.total_cmp(&a.1.any));
    out
}

/// Figure 5: cumulative share of poor calls contributed by the worst `n` AS
/// pairs, for each `n`. Returns `(rank, cumulative_fraction)` points where
/// rank runs over AS pairs sorted by their poor-call count, descending.
pub fn worst_pair_concentration(trace: &Trace, thresholds: &Thresholds) -> Vec<(usize, f64)> {
    let mut poor_by_pair: HashMap<AsPair, usize> = HashMap::new();
    let mut total_poor = 0usize;
    for r in &trace.records {
        if thresholds.any_poor(&r.direct_metrics) {
            *poor_by_pair.entry(r.as_pair()).or_default() += 1;
            total_poor += 1;
        }
    }
    if total_poor == 0 {
        return Vec::new();
    }
    // Order-insensitive: the counts are fully re-sorted on the next line.
    let mut counts: Vec<usize> = poor_by_pair.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let mut cum = 0usize;
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            cum += c;
            (i + 1, cum as f64 / total_poor as f64)
        })
        .collect()
}

/// Figure 6: persistence and prevalence of high-PNR AS pairs.
///
/// Following §2.4: group calls into 24 h windows; a pair is *high-PNR* on a
/// day (for the "any poor" criterion) if its PNR that day is ≥ 1.5× the
/// overall PNR of all calls that day. Only (pair, day) cells with at least
/// `min_calls_per_day` calls participate. Persistence is the median length of
/// a pair's consecutive high-PNR runs (in days); prevalence is the fraction
/// of its observed days that are high-PNR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalPatterns {
    /// Per-pair persistence values (days), one entry per qualifying pair.
    pub persistence: Vec<f64>,
    /// Per-pair prevalence values (0–1), one entry per qualifying pair.
    pub prevalence: Vec<f64>,
}

/// Computes Figure 6 statistics.
pub fn temporal_patterns(
    trace: &Trace,
    thresholds: &Thresholds,
    min_calls_per_day: usize,
) -> TemporalPatterns {
    let day_len = WindowLen::DAY;
    // (pair, day) → (poor, total)
    let mut cells: HashMap<(AsPair, u64), (usize, usize)> = HashMap::new();
    let mut day_totals: HashMap<u64, (usize, usize)> = HashMap::new();
    for r in &trace.records {
        let day = day_len.window_of(r.t).index;
        let poor = thresholds.any_poor(&r.direct_metrics);
        let cell = cells.entry((r.as_pair(), day)).or_default();
        cell.1 += 1;
        if poor {
            cell.0 += 1;
        }
        let dt = day_totals.entry(day).or_default();
        dt.1 += 1;
        if poor {
            dt.0 += 1;
        }
    }

    // Pair → sorted list of (day, high?)
    let mut per_pair: HashMap<AsPair, Vec<(u64, bool)>> = HashMap::new();
    // Order-insensitive: each pair's day list is re-sorted by day before
    // use below, so the push order into `per_pair` cannot reach results.
    // via-audit: allow(map-iteration-order)
    for ((pair, day), (poor, total)) in cells {
        if total < min_calls_per_day {
            continue;
        }
        let (dp, dt) = day_totals[&day];
        let overall = dp as f64 / dt.max(1) as f64;
        let pnr = poor as f64 / total as f64;
        let high = overall > 0.0 && pnr >= 1.5 * overall;
        per_pair.entry(pair).or_default().push((day, high));
    }

    let mut persistence = Vec::new();
    let mut prevalence = Vec::new();
    // Hash order would leak into the output vectors; iterate pairs sorted.
    let mut pairs: Vec<(AsPair, Vec<(u64, bool)>)> = per_pair.into_iter().collect();
    pairs.sort_unstable_by_key(|p| p.0);
    for (_, mut days) in pairs {
        if days.len() < 2 {
            continue;
        }
        days.sort_unstable_by_key(|d| d.0);
        let high_days = days.iter().filter(|d| d.1).count();
        prevalence.push(high_days as f64 / days.len() as f64);

        // Runs of consecutive high-PNR *observed* days.
        let mut runs: Vec<f64> = Vec::new();
        let mut run = 0u64;
        for &(_, high) in &days {
            if high {
                run += 1;
            } else if run > 0 {
                runs.push(run as f64);
                run = 0;
            }
        }
        if run > 0 {
            runs.push(run as f64);
        }
        persistence.push(via_model::stats::percentile(&runs, 50.0).unwrap_or(0.0));
    }
    TemporalPatterns {
        persistence,
        prevalence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceConfig, TraceGenerator};
    use via_netsim::{World, WorldConfig};

    fn trace() -> (World, Trace) {
        let world = World::generate(&WorldConfig::small(), 11);
        let trace = TraceGenerator::new(&world, TraceConfig::small(), 11).generate();
        (world, trace)
    }

    #[test]
    fn summary_counts_entities() {
        let (world, tr) = trace();
        let s = dataset_summary(&tr);
        assert_eq!(s.calls, tr.len());
        assert!(s.users > 100);
        assert!(s.ases as f64 > world.ases.len() as f64 * 0.8);
        assert_eq!(s.countries, world.countries.len());
        assert!((s.international_fraction - 0.466).abs() < 0.05);
    }

    #[test]
    fn pcr_curve_is_increasing_in_rtt() {
        let (_, tr) = trace();
        let c = pcr_vs_metric(&tr, Metric::Rtt, 800.0, 16, 100);
        assert!(c.bins.len() >= 4, "need several populated bins");
        let corr = c.correlation.expect("correlation defined");
        assert!(corr > 0.8, "PCR–RTT correlation too weak: {corr}");
    }

    #[test]
    fn cdf_spans_thresholds() {
        let (_, tr) = trace();
        let cdf = metric_cdf(&tr, Metric::Rtt).unwrap();
        let beyond = cdf.fraction_at_or_above(320.0);
        assert!(
            beyond > 0.03 && beyond < 0.5,
            "tail beyond RTT threshold: {beyond}"
        );
    }

    #[test]
    fn scope_pnr_shows_international_penalty() {
        let (_, tr) = trace();
        let s = pnr_by_scope(&tr, &Thresholds::default());
        assert!(
            s.international.any > s.domestic.any,
            "international {:.3} vs domestic {:.3}",
            s.international.any,
            s.domestic.any
        );
        assert!(s.inter_as.any >= s.intra_as.any);
    }

    #[test]
    fn country_ranking_sorted_desc() {
        let (_, tr) = trace();
        let ranked = pnr_by_country(&tr, &Thresholds::default(), 50);
        assert!(ranked.len() >= 5);
        for w in ranked.windows(2) {
            assert!(w[0].1.any >= w[1].1.any);
        }
    }

    #[test]
    fn concentration_is_monotone_to_one() {
        let (_, tr) = trace();
        let conc = worst_pair_concentration(&tr, &Thresholds::default());
        assert!(!conc.is_empty());
        for w in conc.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!((conc.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Spread-out badness: the single worst pair must not dominate.
        assert!(
            conc[0].1 < 0.25,
            "one pair holds {:.2} of poor calls",
            conc[0].1
        );
    }

    #[test]
    fn temporal_patterns_have_mass() {
        let (_, tr) = trace();
        let tp = temporal_patterns(&tr, &Thresholds::default(), 3);
        assert!(
            tp.prevalence.len() >= 10,
            "only {} pairs",
            tp.prevalence.len()
        );
        assert!(tp.prevalence.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(tp.persistence.iter().all(|&p| p >= 0.0));
        // Skew: some pairs chronically bad, most rarely bad.
        let chronic = tp.prevalence.iter().filter(|&&p| p > 0.7).count();
        let rare = tp.prevalence.iter().filter(|&&p| p < 0.3).count();
        assert!(rare > chronic, "expected skew toward rarely-bad pairs");
    }

    #[test]
    fn empty_trace_is_handled() {
        let tr = Trace::new(0, 0, vec![]);
        let s = dataset_summary(&tr);
        assert_eq!(s.calls, 0);
        assert!(worst_pair_concentration(&tr, &Thresholds::default()).is_empty());
        let tp = temporal_patterns(&tr, &Thresholds::default(), 1);
        assert!(tp.persistence.is_empty());
    }
}
