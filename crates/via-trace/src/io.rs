//! Trace serialization: JSON Lines persistence for call traces.
//!
//! Traces regenerate deterministically from a seed, so persistence is a
//! convenience (sharing a trace between experiment runs, inspecting records
//! with standard tooling) rather than a necessity. The format is one JSON
//! object per line — streamable, appendable, and diffable.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::record::{CallRecord, Trace};

/// Errors arising from trace persistence.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line failed to parse as a record (line number, parser message).
    Parse(usize, String),
    /// The file had no header line.
    MissingHeader,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "trace parse error at line {line}: {msg}"),
            TraceIoError::MissingHeader => write!(f, "trace file is missing its header line"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Header line: trace provenance.
#[derive(serde::Serialize, serde::Deserialize)]
struct Header {
    seed: u64,
    days: u64,
    records: usize,
}

/// Writes a trace as JSON Lines: a header object followed by one record per
/// line.
pub fn write_jsonl(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    let header = Header {
        seed: trace.seed,
        days: trace.days,
        records: trace.records.len(),
    };
    serde_json::to_writer(&mut w, &header).map_err(|e| TraceIoError::Parse(1, e.to_string()))?;
    w.write_all(b"\n")?;
    for r in &trace.records {
        serde_json::to_writer(&mut w, r).map_err(|e| TraceIoError::Parse(0, e.to_string()))?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace written by [`write_jsonl`].
pub fn read_jsonl(path: &Path) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header_line = lines.next().ok_or(TraceIoError::MissingHeader)??;
    let header: Header =
        serde_json::from_str(&header_line).map_err(|e| TraceIoError::Parse(1, e.to_string()))?;
    let mut records = Vec::with_capacity(header.records);
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let r: CallRecord =
            serde_json::from_str(&line).map_err(|e| TraceIoError::Parse(i + 2, e.to_string()))?;
        records.push(r);
    }
    Ok(Trace {
        seed: header.seed,
        days: header.days,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceConfig, TraceGenerator};
    use via_netsim::{World, WorldConfig};

    #[test]
    fn roundtrip_preserves_trace() {
        let world = World::generate(&WorldConfig::tiny(), 21);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 21).generate();
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        write_jsonl(&trace, &path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.seed, trace.seed);
        assert_eq!(back.days, trace.days);
        assert_eq!(back.records, trace.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_jsonl(Path::new("/nonexistent/via/trace.jsonl")).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn empty_file_is_missing_header() {
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, b"").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::MissingHeader));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_reports_line() {
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        std::fs::write(&path, b"{\"seed\":1,\"days\":1,\"records\":1}\nnot-json\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        match err {
            TraceIoError::Parse(line, _) => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
