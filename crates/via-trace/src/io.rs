//! Trace serialization: JSON Lines persistence for call traces.
//!
//! Traces regenerate deterministically from a seed, so persistence is a
//! convenience (sharing a trace between experiment runs, inspecting records
//! with standard tooling) rather than a necessity. The format is one JSON
//! object per line — streamable, appendable, and diffable.
//!
//! Reading is line-streamed: [`JsonlReader`] yields one record at a time
//! with exact error positions (1-based line number and the byte offset of
//! the offending line), and never holds more than one line in memory. The
//! materializing [`read_jsonl`] is a thin collect over it; the streaming
//! replay pipeline (see [`crate::stream`]) consumes the reader directly.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::record::{CallRecord, Trace};

/// Errors arising from trace persistence.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line failed to parse as a record.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Byte offset of the start of the offending line.
        byte_offset: u64,
        /// Parser message.
        msg: String,
    },
    /// A record failed to serialize on write.
    Encode(String),
    /// The file had no header line.
    MissingHeader,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse {
                line,
                byte_offset,
                msg,
            } => write!(
                f,
                "trace parse error at line {line} (byte offset {byte_offset}): {msg}"
            ),
            TraceIoError::Encode(msg) => write!(f, "trace encode error: {msg}"),
            TraceIoError::MissingHeader => write!(f, "trace file is missing its header line"),
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Header line: trace provenance, written as the first line of the file.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct JsonlHeader {
    /// Seed the trace was generated with.
    pub seed: u64,
    /// Trace horizon in days.
    pub days: u64,
    /// Number of records that follow.
    pub records: usize,
}

/// Streaming JSON Lines writer: the header goes out first (the record count
/// must therefore be known up front — trace generation is exact-count, and
/// conversions read it from the source header), then one record per `push`.
/// Only the line being written is ever buffered.
pub struct JsonlWriter {
    w: BufWriter<File>,
    expected: usize,
    written: usize,
}

impl JsonlWriter {
    /// Creates the file and writes the header line.
    pub fn create(path: &Path, seed: u64, days: u64, records: usize) -> Result<Self, TraceIoError> {
        let mut w = BufWriter::new(File::create(path)?);
        let header = JsonlHeader {
            seed,
            days,
            records,
        };
        serde_json::to_writer(&mut w, &header).map_err(|e| TraceIoError::Encode(e.to_string()))?;
        w.write_all(b"\n")?;
        Ok(JsonlWriter {
            w,
            expected: records,
            written: 0,
        })
    }

    /// Appends one record line.
    pub fn push(&mut self, r: &CallRecord) -> Result<(), TraceIoError> {
        serde_json::to_writer(&mut self.w, r).map_err(|e| TraceIoError::Encode(e.to_string()))?;
        self.w.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Flushes and verifies the record count matches the header, so a file
    /// produced by a streaming writer is never silently short.
    pub fn finish(mut self) -> Result<usize, TraceIoError> {
        self.w.flush()?;
        if self.written != self.expected {
            return Err(TraceIoError::Encode(format!(
                "header promised {} records but {} were written",
                self.expected, self.written
            )));
        }
        Ok(self.written)
    }
}

/// Writes a trace as JSON Lines: a header object followed by one record per
/// line.
pub fn write_jsonl(trace: &Trace, path: &Path) -> Result<(), TraceIoError> {
    let mut w = JsonlWriter::create(path, trace.seed, trace.days, trace.records.len())?;
    for r in &trace.records {
        w.push(r)?;
    }
    w.finish()?;
    Ok(())
}

/// Line-streamed JSON Lines reader: one record per [`JsonlReader::next_record`]
/// call, one line resident at a time. Parse failures report the 1-based line
/// number and the byte offset of the line start.
pub struct JsonlReader {
    reader: BufReader<File>,
    header: JsonlHeader,
    /// 1-based number of the last line consumed (the header is line 1).
    line: usize,
    /// Byte offset where the next line starts.
    offset: u64,
    buf: String,
}

impl JsonlReader {
    /// Opens a JSONL trace and parses its header line.
    pub fn open(path: &Path) -> Result<Self, TraceIoError> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut buf = String::new();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            return Err(TraceIoError::MissingHeader);
        }
        let header: JsonlHeader =
            serde_json::from_str(buf.trim_end()).map_err(|e| TraceIoError::Parse {
                line: 1,
                byte_offset: 0,
                msg: e.to_string(),
            })?;
        Ok(JsonlReader {
            reader,
            header,
            line: 1,
            offset: n as u64,
            buf,
        })
    }

    /// The file's header.
    pub fn header(&self) -> JsonlHeader {
        self.header
    }

    /// Bytes consumed from the file so far.
    pub fn bytes_read(&self) -> u64 {
        self.offset
    }

    /// Reads the next record, skipping blank lines; `None` at end of file.
    pub fn next_record(&mut self) -> Result<Option<CallRecord>, TraceIoError> {
        loop {
            self.buf.clear();
            let n = self.reader.read_line(&mut self.buf)?;
            if n == 0 {
                return Ok(None);
            }
            self.line += 1;
            let line_start = self.offset;
            self.offset += n as u64;
            if self.buf.trim().is_empty() {
                continue;
            }
            return serde_json::from_str(self.buf.trim_end())
                .map(Some)
                .map_err(|e| TraceIoError::Parse {
                    line: self.line,
                    byte_offset: line_start,
                    msg: e.to_string(),
                });
        }
    }
}

/// Reads a trace written by [`write_jsonl`], materializing every record.
/// The streaming pipeline ([`crate::stream`]) replays without this step.
pub fn read_jsonl(path: &Path) -> Result<Trace, TraceIoError> {
    let mut r = JsonlReader::open(path)?;
    let header = r.header();
    let mut records = Vec::with_capacity(header.records);
    while let Some(rec) = r.next_record()? {
        records.push(rec);
    }
    Ok(Trace::new(header.seed, header.days, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{TraceConfig, TraceGenerator};
    use via_netsim::{World, WorldConfig};

    #[test]
    fn roundtrip_preserves_trace() {
        let world = World::generate(&WorldConfig::tiny(), 21);
        let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 21).generate();
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        write_jsonl(&trace, &path).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back.seed, trace.seed);
        assert_eq!(back.days, trace.days);
        assert_eq!(back.records, trace.records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_jsonl(Path::new("/nonexistent/via/trace.jsonl")).unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }

    #[test]
    fn empty_file_is_missing_header() {
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, b"").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        assert!(matches!(err, TraceIoError::MissingHeader));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_reports_line_and_byte_offset() {
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        let header = b"{\"seed\":1,\"days\":1,\"records\":2}\n";
        let mut body = header.to_vec();
        body.extend_from_slice(b"\n"); // blank line: skipped, but counted
        body.extend_from_slice(b"not-json\n");
        std::fs::write(&path, &body).unwrap();
        let err = read_jsonl(&path).unwrap_err();
        match err {
            TraceIoError::Parse {
                line,
                byte_offset,
                msg,
            } => {
                assert_eq!(line, 3, "header is line 1, blank is 2, corrupt is 3");
                assert_eq!(byte_offset, header.len() as u64 + 1);
                assert!(!msg.is_empty());
            }
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streaming_writer_rejects_count_mismatch() {
        let dir = std::env::temp_dir().join("via-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.jsonl");
        let w = JsonlWriter::create(&path, 1, 1, 3).unwrap();
        let err = w.finish().unwrap_err();
        assert!(matches!(err, TraceIoError::Encode(_)));
        assert!(err.to_string().contains("promised 3"));
        std::fs::remove_file(&path).ok();
    }
}
