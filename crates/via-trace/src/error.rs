//! Unified error type for trace persistence.
//!
//! [`crate::io`] and [`crate::csv`] each carry a format-specific error with
//! line-level detail; callers that dispatch on file extension (see
//! [`crate::load_trace`]) get one [`TraceError`] covering both, plus the
//! cases that belong to neither format.

use std::path::PathBuf;

use crate::binfmt::BinError;
use crate::csv::CsvError;
use crate::io::TraceIoError;

/// Any error arising while loading or saving a trace.
#[derive(Debug)]
pub enum TraceError {
    /// JSON Lines persistence failed.
    Jsonl(TraceIoError),
    /// CSV persistence failed.
    Csv(CsvError),
    /// Binary (`.vbt`) persistence failed.
    Binary(BinError),
    /// The path's extension matches no supported trace format.
    UnknownFormat(PathBuf),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Jsonl(e) => write!(f, "{e}"),
            TraceError::Csv(e) => write!(f, "{e}"),
            TraceError::Binary(e) => write!(f, "{e}"),
            TraceError::UnknownFormat(p) => write!(
                f,
                "unsupported trace format {:?} (expected .jsonl, .vbt, or .csv)",
                p
            ),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Jsonl(e) => Some(e),
            TraceError::Csv(e) => Some(e),
            TraceError::Binary(e) => Some(e),
            TraceError::UnknownFormat(_) => None,
        }
    }
}

impl From<TraceIoError> for TraceError {
    fn from(e: TraceIoError) -> Self {
        TraceError::Jsonl(e)
    }
}

impl From<CsvError> for TraceError {
    fn from(e: CsvError) -> Self {
        TraceError::Csv(e)
    }
}

impl From<BinError> for TraceError {
    fn from(e: BinError) -> Self {
        TraceError::Binary(e)
    }
}
