//! Minimal flag parser for the CLI (no external dependencies).
//!
//! Supports `--key value` flags, bare `--switch` flags (stored as `true`),
//! and positional arguments, with typed accessors and helpful error
//! messages.

use std::collections::HashMap;

/// Parsed command-line flags and positionals.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    positionals: Vec<String>,
}

/// Flag-parsing errors.
#[derive(Debug, PartialEq, Eq)]
pub enum FlagError {
    /// A value failed to parse as its expected type.
    BadValue {
        /// The flag name.
        flag: String,
        /// What it should have been.
        expected: &'static str,
        /// What was given.
        got: String,
    },
    /// A required flag or positional was absent.
    Missing(&'static str),
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagError::BadValue {
                flag,
                expected,
                got,
            } => write!(f, "--{flag} expects {expected}, got '{got}'"),
            FlagError::Missing(what) => write!(f, "missing required {what}"),
        }
    }
}

impl std::error::Error for FlagError {}

impl Flags {
    /// Parses an argument list (excluding the program and subcommand names).
    /// A `--flag` followed by another flag (or the end of the list) is a
    /// bare switch and stores the value `true`; typed accessors on a
    /// value-expecting flag used as a switch report the mismatch.
    pub fn parse(args: &[String]) -> Result<Flags, FlagError> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                match args.get(i + 1).filter(|v| !v.starts_with("--")) {
                    Some(value) => {
                        flags.values.insert(name.to_string(), value.clone());
                        i += 2;
                    }
                    None => {
                        flags.values.insert(name.to_string(), "true".to_string());
                        i += 1;
                    }
                }
            } else {
                flags.positionals.push(args[i].clone());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// String flag with a default.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Optional string flag: `None` when absent.
    pub fn str_opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Integer flag with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, FlagError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| FlagError::BadValue {
                flag: key.to_string(),
                expected: "an integer",
                got: v.clone(),
            }),
        }
    }

    /// Float flag with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, FlagError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| FlagError::BadValue {
                flag: key.to_string(),
                expected: "a number",
                got: v.clone(),
            }),
        }
    }

    /// Boolean flag with a default: accepts a bare `--switch` (true) or an
    /// explicit `--switch true|false`.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, FlagError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| FlagError::BadValue {
                flag: key.to_string(),
                expected: "true or false (or no value)",
                got: v.clone(),
            }),
        }
    }

    /// First positional argument, required.
    pub fn positional(&self, what: &'static str) -> Result<&str, FlagError> {
        self.positional_at(0, what)
    }

    /// Nth positional argument (0-based), required.
    pub fn positional_at(&self, idx: usize, what: &'static str) -> Result<&str, FlagError> {
        self.positionals
            .get(idx)
            .map(String::as_str)
            .ok_or(FlagError::Missing(what))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let f = Flags::parse(&argv(&["input.jsonl", "--seed", "7", "--scale", "small"])).unwrap();
        assert_eq!(f.positional("input").unwrap(), "input.jsonl");
        assert_eq!(f.u64_or("seed", 0).unwrap(), 7);
        assert_eq!(f.str_or("scale", "tiny"), "small");
        assert_eq!(f.str_or("absent", "fallback"), "fallback");
    }

    #[test]
    fn bare_switches_parse_as_true() {
        let f = Flags::parse(&argv(&["--warm", "--seed", "7"])).unwrap();
        assert!(f.bool_or("warm", false).unwrap());
        assert!(!f.bool_or("absent", false).unwrap());
        assert_eq!(f.u64_or("seed", 0).unwrap(), 7);
        let g = Flags::parse(&argv(&["--warm", "false"])).unwrap();
        assert!(!g.bool_or("warm", true).unwrap());
        assert!(g.bool_or("warm", true).is_ok());
    }

    #[test]
    fn value_flag_used_as_switch_reports_type_mismatch() {
        // `--seed` with no value parses as the switch value `true`; the
        // typed accessor then reports what the flag expected.
        let f = Flags::parse(&argv(&["--seed"])).unwrap();
        let err = f.u64_or("seed", 0).unwrap_err();
        assert!(matches!(err, FlagError::BadValue { .. }));
        let g = Flags::parse(&argv(&["--seed", "--scale", "x"])).unwrap();
        assert!(g.u64_or("seed", 0).is_err());
        assert_eq!(g.str_or("scale", "tiny"), "x");
    }

    #[test]
    fn bad_numeric_values_report_type() {
        let f = Flags::parse(&argv(&["--seed", "abc"])).unwrap();
        let err = f.u64_or("seed", 0).unwrap_err();
        assert!(matches!(err, FlagError::BadValue { .. }));
        assert!(err.to_string().contains("integer"));
        let g = Flags::parse(&argv(&["--budget", "lots"])).unwrap();
        assert!(g.f64_or("budget", 1.0).is_err());
    }

    #[test]
    fn missing_positional_is_reported() {
        let f = Flags::parse(&argv(&["--seed", "1"])).unwrap();
        assert_eq!(
            f.positional("trace file"),
            Err(FlagError::Missing("trace file"))
        );
    }

    #[test]
    fn defaults_pass_through() {
        let f = Flags::parse(&[]).unwrap();
        assert_eq!(f.u64_or("seed", 42).unwrap(), 42);
        assert_eq!(f.f64_or("budget", 0.3).unwrap(), 0.3);
    }
}
