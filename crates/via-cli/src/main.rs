//! `via` — command-line interface to the VIA reproduction.
//!
//! ```text
//! via gen      --scale small --seed 7 --out trace.jsonl   generate a trace
//! via analyze  trace.jsonl                                 §2 dataset analysis
//! via replay   --scale small --strategy via --objective rtt  run one strategy
//! via testbed  --clients 4 --relays 4 --pairs 3 --rounds 3   live loopback run
//! ```
//!
//! Everything except `testbed` is deterministic in `--seed`.

mod args;

use std::path::Path;

use args::Flags;
use via_core::replay::{ReplayConfig, ReplaySim};
use via_core::strategy::{MultipathMode, StrategyKind};
use via_model::metrics::{Metric, Thresholds};
use via_model::time::WindowLen;
use via_netsim::{World, WorldConfig};
use via_trace::stream::{FileSource, RecordSource};
use via_trace::{Trace, TraceConfig, TraceGenerator};

const USAGE: &str = "\
via — predictive relay selection for Internet telephony (SIGCOMM 2016 reproduction)

USAGE:
    via gen     [--scale tiny|small|paper] [--seed N] [--out FILE]
    via trace gen     [--scale tiny|small|paper] [--seed N] [--out FILE.jsonl|.vbt]
                      [--frame-hours N]
    via trace convert IN.jsonl|.vbt OUT.jsonl|.vbt [--frame-hours N]
    via trace info    FILE.jsonl|.vbt
    via analyze FILE
    via replay  [--scale tiny|small|paper] [--seed N] [--workers N] [--warm]
                [--stream] [--trace FILE.jsonl|.vbt]
                [--strategy default|oracle|prediction|exploration|via|budgeted|racing|multipath]
                [--objective rtt|loss|jitter] [--budget F]
                [--k N] [--mode dup|stripe]   (multipath only)
                [--metrics FILE.json] [--metrics-prom FILE.prom]
    via testbed [--clients N] [--relays N] [--pairs N] [--rounds N] [--seed N]
                [--probes N] [--gap-ms N] [--deadline-s N] [--chaos true]
                [--metrics FILE.json] [--metrics-prom FILE.prom]
    via server serve [--addr HOST:PORT] [--deadline-s N] [--scale tiny|small|paper]
                [--seed N] [--objective rtt|loss|jitter] [--epsilon F]
                [--budget F] [--shards N] [--window-hours N]
    via server soak  [--clients N] [--calls N] [--windows N] [same knobs as serve]
                [--metrics FILE.json] [--metrics-prom FILE.prom]

`via trace gen` streams records straight to disk (any scale in bounded
memory); `via gen` materializes first and only writes JSONL. `via replay
--stream` replays without materializing the trace: from a file when
--trace is given, else generated on the fly — results are byte-identical
to the materialized replay at every --workers value.

The replay `--metrics` snapshot holds only the deterministic metric core:
it is byte-identical for any --workers value and across reruns of the same
seed. Testbed metrics describe real socket behavior and are not.

`via server serve` runs the live controller until a client sends Shutdown
(or --deadline-s elapses). `via server soak` is self-contained: it serves
on an ephemeral loopback port, drives concurrent clients through select/
report rounds spanning window rollovers, fails on any protocol error, and
writes the controller's observability snapshot wherever --metrics points.
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(rest),
        "trace" => cmd_trace(rest),
        "analyze" => cmd_analyze(rest),
        "replay" => cmd_replay(rest),
        "testbed" => cmd_testbed(rest),
        "server" => cmd_server(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("unknown subcommand '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Writes a metrics snapshot wherever the `--metrics` (JSON) and
/// `--metrics-prom` (Prometheus text exposition) flags point. The JSON form
/// is the serialized deterministic core — wall-clock timings never reach it.
fn write_metrics(
    snap: &via_obs::MetricsSnapshot,
    json: Option<&str>,
    prom: Option<&str>,
) -> CliResult {
    if let Some(path) = json {
        let mut body = serde_json::to_string_pretty(snap)?;
        body.push('\n');
        std::fs::write(path, body)?;
        println!("metrics: {} -> {path}", snap.brief());
    }
    if let Some(path) = prom {
        std::fs::write(path, via_obs::to_prometheus(snap))?;
        println!("metrics (prometheus) -> {path}");
    }
    Ok(())
}

fn scale_configs(scale: &str) -> Result<(WorldConfig, TraceConfig), String> {
    match scale {
        "tiny" => Ok((WorldConfig::tiny(), TraceConfig::tiny())),
        "small" => Ok((WorldConfig::small(), TraceConfig::small())),
        "paper" => Ok((WorldConfig::paper_scale(), TraceConfig::paper_scale())),
        other => Err(format!("unknown scale '{other}' (tiny|small|paper)")),
    }
}

fn build(scale: &str, seed: u64) -> Result<(World, Trace), String> {
    let (wc, tc) = scale_configs(scale)?;
    let world = World::generate(&wc, seed);
    let trace = TraceGenerator::new(&world, tc, seed).generate();
    Ok((world, trace))
}

fn cmd_gen(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let seed = flags.u64_or("seed", 2016)?;
    let scale = flags.str_or("scale", "small");
    let out = flags.str_or("out", "trace.jsonl").to_string();
    let (world, trace) = build(scale, seed)?;
    via_trace::io::write_jsonl(&trace, std::path::Path::new(&out))?;
    println!(
        "generated {} calls over {} days ({} countries, {} ASes, {} relays, seed {seed}) -> {out}",
        trace.len(),
        trace.days,
        world.countries.len(),
        world.ases.len(),
        world.relays.len(),
    );
    Ok(())
}

/// On-disk framing window for `.vbt` outputs (`--frame-hours`, default 24).
fn frame_len(flags: &Flags) -> Result<WindowLen, Box<dyn std::error::Error>> {
    let hours = flags.u64_or("frame-hours", 24)?;
    WindowLen::secs_checked(hours.saturating_mul(3_600))
        .ok_or_else(|| format!("--frame-hours must be positive, got {hours}").into())
}

/// Streams every record of `src` into a trace file picked by extension,
/// never holding more than one record (plus the binary frame buffer)
/// resident. Returns the record count written.
fn stream_to_file(
    mut src: impl RecordSource,
    out: &Path,
    frame: WindowLen,
) -> Result<u64, Box<dyn std::error::Error>> {
    let n = src
        .size_hint()
        .ok_or("source does not know its record count up front")?;
    match out.extension().and_then(|e| e.to_str()) {
        Some("jsonl") => {
            let mut w = via_trace::io::JsonlWriter::create(
                out,
                src.seed(),
                src.days(),
                usize::try_from(n)?,
            )?;
            while let Some(r) = src.next_record()? {
                w.push(&r)?;
            }
            w.finish()?;
        }
        Some("vbt") => {
            let mut w = via_trace::binfmt::BinWriter::create(out, src.seed(), src.days(), frame)?;
            while let Some(r) = src.next_record()? {
                w.push(&r)?;
            }
            w.finish()?;
        }
        _ => {
            return Err(format!(
                "unsupported output format '{}' (expected .jsonl or .vbt)",
                out.display()
            )
            .into())
        }
    }
    Ok(n)
}

fn cmd_trace(rest: &[String]) -> CliResult {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("trace needs a subcommand: gen | convert | info".into());
    };
    match sub.as_str() {
        "gen" => cmd_trace_gen(rest),
        "convert" => cmd_trace_convert(rest),
        "info" => cmd_trace_info(rest),
        other => Err(format!("unknown trace subcommand '{other}' (gen|convert|info)").into()),
    }
}

/// `via trace gen`: stream a synthetic trace straight to disk. Unlike
/// `via gen`, the trace is never materialized — paper scale works in a
/// few dozen MiB of memory.
fn cmd_trace_gen(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let seed = flags.u64_or("seed", 2016)?;
    let scale = flags.str_or("scale", "small");
    let out = flags.str_or("out", "trace.vbt").to_string();
    let frame = frame_len(&flags)?;
    let (wc, tc) = scale_configs(scale)?;
    let world = World::generate(&wc, seed);
    let generator = TraceGenerator::new(&world, tc, seed);
    let n = stream_to_file(generator.stream(), Path::new(&out), frame)?;
    println!(
        "streamed {n} calls over {} days ({} ASes, {} relays, seed {seed}) -> {out}",
        generator.effective_days(),
        world.ases.len(),
        world.relays.len(),
    );
    Ok(())
}

/// `via trace convert`: stream-convert between `.jsonl` and `.vbt` without
/// materializing the trace.
fn cmd_trace_convert(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let input = flags.positional_at(0, "input trace file")?.to_string();
    let output = flags.positional_at(1, "output trace file")?.to_string();
    let frame = frame_len(&flags)?;
    let src = FileSource::open(Path::new(&input))?;
    let n = stream_to_file(src, Path::new(&output), frame)?;
    let in_bytes = std::fs::metadata(&input)?.len();
    let out_bytes = std::fs::metadata(&output)?.len();
    println!("converted {n} records: {input} ({in_bytes} B) -> {output} ({out_bytes} B)");
    Ok(())
}

/// `via trace info`: print a trace file's header without reading its body.
fn cmd_trace_info(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let path = flags.positional("trace file")?.to_string();
    let p = Path::new(&path);
    let file_bytes = std::fs::metadata(p)?.len();
    let src = FileSource::open(p)?;
    match &src {
        FileSource::Jsonl(_) => println!("format: jsonl (text, one record per line)"),
        FileSource::Binary(b) => {
            let h = b.header();
            println!(
                "format: vbt v{} (binary, {}-byte records, framed at {} s)",
                h.version,
                via_trace::binfmt::RECORD_BYTES,
                h.frame_len.secs(),
            );
        }
    }
    let records = src.size_hint().unwrap_or(0);
    println!(
        "seed: {}   days: {}   records: {records}   file: {file_bytes} bytes",
        src.seed(),
        src.days(),
    );
    if records > 0 {
        println!("bytes/record: {:.1}", file_bytes as f64 / records as f64);
    }
    Ok(())
}

fn cmd_analyze(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let path = flags.positional("trace file")?;
    let trace = via_trace::io::read_jsonl(std::path::Path::new(path))?;
    let thresholds = Thresholds::default();

    let s = via_trace::analysis::dataset_summary(&trace);
    println!("calls: {}", s.calls);
    println!("users: {}", s.users);
    println!(
        "ASes: {}   countries: {}   days: {}",
        s.ases, s.countries, s.days
    );
    println!(
        "international: {:.1}%   inter-AS: {:.1}%   wireless: {:.1}%",
        100.0 * s.international_fraction,
        100.0 * s.inter_as_fraction,
        100.0 * s.wireless_fraction
    );

    println!("\nmetric distribution (default paths):");
    println!("| metric | p50 | p90 | p99 | beyond threshold |");
    println!("|---|---|---|---|---|");
    for metric in Metric::ALL {
        let cdf = via_trace::analysis::metric_cdf(&trace, metric).ok_or("trace holds no calls")?;
        println!(
            "| {metric} | {:.1} | {:.1} | {:.1} | {:.1}% |",
            cdf.quantile(0.5),
            cdf.quantile(0.9),
            cdf.quantile(0.99),
            100.0 * cdf.fraction_at_or_above(thresholds.for_metric(metric)),
        );
    }

    let scope = via_trace::analysis::pnr_by_scope(&trace, &thresholds);
    println!(
        "\nPNR(any): international {:.1}% vs domestic {:.1}%",
        100.0 * scope.international.any,
        100.0 * scope.domestic.any
    );
    Ok(())
}

fn parse_strategy(name: &str, budget: f64, k: usize, mode: &str) -> Result<StrategyKind, String> {
    Ok(match name {
        "default" => StrategyKind::Default,
        "oracle" => StrategyKind::Oracle,
        "prediction" => StrategyKind::PredictionOnly,
        "exploration" => StrategyKind::ExplorationOnly,
        "via" => StrategyKind::Via,
        "budgeted" => StrategyKind::ViaBudgeted { budget },
        "racing" => StrategyKind::HybridRacing { k: 3 },
        "multipath" => {
            if k == 0 {
                return Err("multipath needs --k >= 1".into());
            }
            StrategyKind::Multipath {
                k,
                mode: parse_multipath_mode(mode)?,
                budget,
            }
        }
        other => return Err(format!("unknown strategy '{other}'")),
    })
}

fn parse_multipath_mode(name: &str) -> Result<MultipathMode, String> {
    Ok(match name {
        "dup" | "duplicate" => MultipathMode::Duplicate,
        "stripe" => MultipathMode::Stripe,
        other => return Err(format!("unknown multipath mode '{other}' (dup|stripe)")),
    })
}

fn parse_objective(name: &str) -> Result<Metric, String> {
    Ok(match name {
        "rtt" => Metric::Rtt,
        "loss" => Metric::Loss,
        "jitter" => Metric::Jitter,
        other => return Err(format!("unknown objective '{other}' (rtt|loss|jitter)")),
    })
}

fn cmd_replay(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let seed = flags.u64_or("seed", 2016)?;
    let scale = flags.str_or("scale", "small");
    let strategy_name = flags.str_or("strategy", "via");
    // Budgeted defaults to the paper's 0.3 relay budget; multipath defaults
    // to an open gate so `--strategy multipath --k 2` duplicates freely
    // until an explicit --budget is set (duplicate traffic is charged k×).
    let default_budget = if strategy_name == "multipath" {
        1.0
    } else {
        0.3
    };
    let budget = flags.f64_or("budget", default_budget)?;
    let k = usize::try_from(flags.u64_or("k", 2)?)?;
    let mp_mode = flags.str_or("mode", "dup");
    // Worker count only affects wall-clock: replay results are byte-identical
    // for any value (0 = one worker per core).
    let workers = usize::try_from(flags.u64_or("workers", 0)?)?;
    // Prebuild all trace-reachable segment latents before the replay loop;
    // purely a startup/throughput trade, never a results change.
    let warm = flags.bool_or("warm", false)?;
    let kind = parse_strategy(strategy_name, budget, k, mp_mode)?;
    let objective = parse_objective(flags.str_or("objective", "rtt"))?;
    let metrics_json = flags.str_opt("metrics");
    let metrics_prom = flags.str_opt("metrics-prom");
    // Streamed replay: from a trace file (--trace) or generated on the fly
    // (--stream without --trace). Either way the trace is never
    // materialized, per-call outcomes are not collected, and the reported
    // numbers come from the worker-count-invariant aggregate — byte-identical
    // to what the materialized engine computes.
    let trace_file = flags.str_opt("trace").map(str::to_string);
    let streamed = flags.bool_or("stream", false)? || trace_file.is_some();

    let (wc, tc) = scale_configs(scale)?;
    let world = World::generate(&wc, seed);
    let cfg = ReplayConfig {
        objective,
        seed,
        workers,
        warm,
        metrics: metrics_json.is_some() || metrics_prom.is_some(),
        collect_calls: !streamed,
        ..ReplayConfig::default()
    };
    let out = if let Some(file) = &trace_file {
        ReplaySim::streaming(&world, cfg).run_stream(FileSource::open(Path::new(file))?, kind)?
    } else if streamed {
        let generator = TraceGenerator::new(&world, tc, seed);
        ReplaySim::streaming(&world, cfg).run_stream(generator.stream(), kind)?
    } else {
        let trace = TraceGenerator::new(&world, tc, seed).generate();
        ReplaySim::new(&world, &trace, cfg).run(kind)
    };
    let pnr = out.aggregate.pnr();
    let (direct, bounce, transit) = out.aggregate.option_mix();

    println!(
        "strategy: {}   objective: {objective}   calls: {}",
        out.strategy, out.aggregate.calls
    );
    println!(
        "PNR: rtt {:.1}%  loss {:.1}%  jitter {:.1}%  any {:.1}%",
        100.0 * pnr.rtt,
        100.0 * pnr.loss,
        100.0 * pnr.jitter,
        100.0 * pnr.any
    );
    println!(
        "mix: direct {:.0}%  bounce {:.0}%  transit {:.0}%   controller contacts: {}",
        100.0 * direct,
        100.0 * bounce,
        100.0 * transit,
        out.controller_contacts
    );
    println!("engine: {}", out.stats.summary());
    if streamed {
        let mibs = if out.stats.wall_ms > 0.0 {
            out.stats.bytes_decoded as f64 / (out.stats.wall_ms / 1e3) / (1024.0 * 1024.0)
        } else {
            0.0
        };
        println!(
            "stream: {} bytes decoded ({mibs:.1} MiB/s), digest {:#018x}",
            out.stats.bytes_decoded, out.aggregate.digest
        );
    }
    if let Some(snap) = &out.obs {
        write_metrics(snap, metrics_json, metrics_prom)?;
    }
    Ok(())
}

fn cmd_testbed(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    // Narrow with range checks so oversized values error instead of
    // silently truncating.
    fn bounded<T: TryFrom<u64>>(value: u64, flag: &str) -> Result<T, String> {
        T::try_from(value).map_err(|_| format!("--{flag} value {value} is out of range"))
    }
    let mut cfg = via_testbed::TestbedConfig {
        n_clients: bounded(flags.u64_or("clients", 4)?, "clients")?,
        n_relays: bounded(flags.u64_or("relays", 4)?, "relays")?,
        n_pairs: bounded(flags.u64_or("pairs", 3)?, "pairs")?,
        rounds: bounded(flags.u64_or("rounds", 3)?, "rounds")?,
        probes: bounded(flags.u64_or("probes", 15)?, "probes")?,
        gap_ms: flags.u64_or("gap-ms", 2)?,
        seed: flags.u64_or("seed", 18)?,
        ..via_testbed::TestbedConfig::fast()
    };
    cfg.timing.global = std::time::Duration::from_secs(flags.u64_or("deadline-s", 180)?);
    if flags.bool_or("chaos", false)? {
        cfg.fault = via_testbed::FaultPlan::chaos(cfg.seed, cfg.n_pairs, cfg.n_relays);
    }
    let result = via_testbed::run_testbed(&cfg)?;
    println!(
        "{} reports collected ({} degraded to the direct path); \
         {} probes forwarded, {} dropped by impairment",
        result.reports.len(),
        result.degraded_count(),
        result.forwarded,
        result.dropped
    );
    if !result.failures.is_empty() {
        println!("{} calls failed:", result.failures.len());
        for f in &result.failures {
            let relay = f.relay.map_or_else(|| "-".to_string(), |r| r.to_string());
            println!(
                "  {}->{} relay {relay}: {}",
                f.caller,
                f.callee,
                f.cause.kind()
            );
        }
    }
    for e in &result.client_errors {
        println!("client error: {e}");
    }
    let eval = via_testbed::evaluate_via_selection(&result.reports, Metric::Rtt);
    println!(
        "VIA selection: {} decisions, best relay picked {:.0}% of the time",
        eval.decisions,
        100.0 * eval.best_pick_fraction
    );
    write_metrics(
        &result.obs,
        flags.str_opt("metrics"),
        flags.str_opt("metrics-prom"),
    )?;
    Ok(())
}

/// A built controller plus the key-space size and candidate set the soak
/// loop drives it with.
type BuiltServer = (
    std::sync::Arc<via_server::Controller>,
    u32,
    Vec<via_model::options::RelayOption>,
);

/// Builds a live controller from the shared server flags: world-derived
/// geographic prior (AS granularity) and precomputed backbone legs, exactly
/// the inputs the replay engine hands its predictor.
fn build_server(flags: &Flags) -> Result<BuiltServer, Box<dyn std::error::Error>> {
    use via_model::ids::RelayId;
    use via_model::options::RelayOption;

    let seed = flags.u64_or("seed", 7)?;
    let (world_cfg, _) = scale_configs(flags.str_or("scale", "tiny"))?;
    let world = World::generate(&world_cfg, seed);
    let granularity = via_core::replay::SpatialGranularity::As;
    let key_positions = granularity.key_positions(&world);
    let n_keys = u32::try_from(key_positions.len())?;
    let prior =
        via_core::GeoPrior::new(key_positions, world.relays.iter().map(|r| r.pos).collect());
    let n_relays = world.relays.len();
    let mut legs = Vec::with_capacity(n_relays * n_relays);
    for i in 0..n_relays {
        for j in 0..n_relays {
            legs.push(
                world
                    .perf()
                    .backbone_metrics(RelayId(u32::try_from(i)?), RelayId(u32::try_from(j)?)),
            );
        }
    }
    let backbone: via_core::BackboneFn = std::sync::Arc::new(move |a: RelayId, b: RelayId| {
        legs[a.0 as usize * n_relays + b.0 as usize]
    });
    let budget = flags.f64_or("budget", 0.0)?;
    let cfg = via_server::ServerConfig {
        seed,
        objective: parse_objective(flags.str_or("objective", "rtt"))?,
        window: WindowLen::hours(flags.u64_or("window-hours", 1)?.max(1)),
        epsilon: flags.f64_or("epsilon", 0.05)?,
        budget: (budget > 0.0).then_some(budget),
        shards: usize::try_from(flags.u64_or("shards", 8)?)?,
        start: via_model::time::SimTime::ZERO,
        ..via_server::ServerConfig::default()
    };
    // Candidate set offered on every call: direct, a bounce through each of
    // up to 8 relays, and one transit pair when the fleet allows it.
    let mut candidates = vec![RelayOption::Direct];
    candidates.extend((0..n_relays.min(8)).map(|r| RelayOption::Bounce(RelayId(r as u32))));
    if n_relays >= 2 {
        candidates.push(RelayOption::Transit(RelayId(0), RelayId(1)));
    }
    let controller = std::sync::Arc::new(via_server::Controller::new(cfg, prior, backbone));
    Ok((controller, n_keys, candidates))
}

fn cmd_server(rest: &[String]) -> CliResult {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("server needs a subcommand (serve|soak)".into());
    };
    match sub.as_str() {
        "serve" => cmd_server_serve(rest),
        "soak" => cmd_server_soak(rest),
        other => Err(format!("unknown server subcommand '{other}' (serve|soak)").into()),
    }
}

fn cmd_server_serve(rest: &[String]) -> CliResult {
    let flags = Flags::parse(rest)?;
    let (controller, n_keys, candidates) = build_server(&flags)?;
    let addr: std::net::SocketAddr = flags.str_or("addr", "127.0.0.1:4790").parse()?;
    let deadline_s = flags.u64_or("deadline-s", 0)?;
    let handle = via_server::serve_on(controller, addr)?;
    println!(
        "via-server listening on {} ({} keys, {} candidate options per call)",
        handle.addr(),
        n_keys,
        candidates.len()
    );
    let started = std::time::Instant::now();
    while !handle.shutting_down() {
        if deadline_s > 0 && started.elapsed().as_secs() >= deadline_s {
            println!("deadline reached; stopping");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let controller = std::sync::Arc::clone(handle.controller());
    handle.stop();
    let snap = controller.observability_snapshot();
    println!("server stopped: {}", snap.brief());
    Ok(())
}

/// Self-contained soak: serve on an ephemeral loopback port, drive
/// concurrent client connections through select/report rounds that span
/// window rollovers, then snapshot and shut down. Any protocol error fails
/// the run (exit code 1) — this is the CI soak gate.
fn cmd_server_soak(rest: &[String]) -> CliResult {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use via_model::time::SimTime;

    let flags = Flags::parse(rest)?;
    let (controller, n_keys, candidates) = build_server(&flags)?;
    let seed = flags.u64_or("seed", 7)?;
    let clients = flags.u64_or("clients", 4)?.max(1);
    let calls = flags.u64_or("calls", 2_000)?.max(1);
    let windows = flags.u64_or("windows", 3)?.max(1);
    let window_secs = controller.config().window.secs();
    let span = windows * window_secs;
    let timeout = std::time::Duration::from_secs(10);

    let handle = via_server::serve(controller)?;
    let addr = handle.addr();
    println!("soak: {clients} clients x {calls} calls over {windows} windows against {addr}");
    let started = std::time::Instant::now();
    let workers: Vec<std::thread::JoinHandle<Result<u64, String>>> = (0..clients)
        .map(|c| {
            let candidates = candidates.clone();
            std::thread::spawn(move || {
                let mut client = via_server::Client::connect(addr, timeout)
                    .map_err(|e| format!("client {c} connect: {e}"))?;
                let mut rng =
                    StdRng::seed_from_u64(via_model::seed::derive_indexed(seed, "soak.client", c));
                let mut done = 0u64;
                for i in 0..calls {
                    let call_id = c * calls + i;
                    let t = SimTime(span * i / calls);
                    let src = rng.random_range(0..n_keys);
                    let dst = (src + rng.random_range(1..n_keys.max(2))) % n_keys;
                    let sel = client
                        .select(call_id, t, src, dst, &candidates)
                        .map_err(|e| format!("client {c} select #{i}: {e}"))?;
                    // Report the selected option so the soak is closed-loop.
                    let m = via_model::metrics::PathMetrics::new(
                        40.0 + rng.random::<f64>() * 80.0,
                        rng.random::<f64>() * 2.0,
                        1.0 + rng.random::<f64>() * 5.0,
                    );
                    client
                        .report(t, src, dst, sel.option, m)
                        .map_err(|e| format!("client {c} report #{i}: {e}"))?;
                    done += 1;
                }
                Ok(done)
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut errors = Vec::new();
    for worker in workers {
        match worker.join() {
            Ok(Ok(n)) => completed += n,
            Ok(Err(e)) => errors.push(e),
            Err(_) => errors.push("client thread panicked".to_string()),
        }
    }
    let elapsed = started.elapsed().as_secs_f64();

    // Snapshot over the wire (exercises the RPC), then client-initiated
    // shutdown; wait() returns only when the accept loop exited cleanly.
    let controller = std::sync::Arc::clone(handle.controller());
    let mut control =
        via_server::Client::connect(addr, timeout).map_err(|e| format!("control connect: {e}"))?;
    let snapshot_json = control.snapshot().map_err(|e| format!("snapshot: {e}"))?;
    control.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    handle.wait();

    let hist = controller.latency_histogram();
    let p50 = hist.quantile_bracket(0.5).map_or(f64::NAN, |(_, hi)| hi);
    let p99 = hist.quantile_bracket(0.99).map_or(f64::NAN, |(_, hi)| hi);
    println!(
        "soak: {completed} calls in {elapsed:.2}s ({:.0} selections/s over the socket), \
         select p50 <= {p50:.1} us, p99 <= {p99:.1} us, {} rollovers, {} snapshot bytes",
        completed as f64 / elapsed.max(1e-9),
        controller.window_index(),
        snapshot_json.len()
    );
    write_metrics(
        &controller.observability_snapshot(),
        flags.str_opt("metrics"),
        flags.str_opt("metrics-prom"),
    )?;
    if !errors.is_empty() {
        for e in &errors {
            eprintln!("protocol error: {e}");
        }
        return Err(format!("soak saw {} protocol errors", errors.len()).into());
    }
    if completed != clients * calls {
        return Err(format!("soak completed {completed} of {} calls", clients * calls).into());
    }
    println!("soak: clean shutdown, zero protocol errors");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_parse() {
        assert!(matches!(
            parse_strategy("default", 0.3, 2, "dup").unwrap(),
            StrategyKind::Default
        ));
        assert!(matches!(
            parse_strategy("via", 0.3, 2, "dup").unwrap(),
            StrategyKind::Via
        ));
        assert!(matches!(
            parse_strategy("budgeted", 0.25, 2, "dup").unwrap(),
            StrategyKind::ViaBudgeted { .. }
        ));
        assert!(matches!(
            parse_strategy("racing", 0.3, 2, "dup").unwrap(),
            StrategyKind::HybridRacing { k: 3 }
        ));
        assert!(matches!(
            parse_strategy("multipath", 1.0, 2, "dup").unwrap(),
            StrategyKind::Multipath {
                k: 2,
                mode: MultipathMode::Duplicate,
                ..
            }
        ));
        assert!(matches!(
            parse_strategy("multipath", 0.25, 3, "stripe").unwrap(),
            StrategyKind::Multipath {
                k: 3,
                mode: MultipathMode::Stripe,
                ..
            }
        ));
        assert!(parse_strategy("multipath", 1.0, 0, "dup").is_err());
        assert!(parse_strategy("multipath", 1.0, 2, "fanout").is_err());
        assert!(parse_strategy("bogus", 0.3, 2, "dup").is_err());
    }

    #[test]
    fn objectives_parse() {
        assert_eq!(parse_objective("rtt").unwrap(), Metric::Rtt);
        assert_eq!(parse_objective("loss").unwrap(), Metric::Loss);
        assert_eq!(parse_objective("jitter").unwrap(), Metric::Jitter);
        assert!(parse_objective("bandwidth").is_err());
    }

    #[test]
    fn scales_resolve_to_configs() {
        for scale in ["tiny", "small", "paper"] {
            let (wc, tc) = scale_configs(scale).unwrap();
            assert!(wc.n_countries >= 2);
            assert!(tc.calls_per_day > 0);
        }
        assert!(scale_configs("enormous").is_err());
    }

    #[test]
    fn build_produces_consistent_world_and_trace() {
        let (world, trace) = build("tiny", 5).unwrap();
        assert!(!trace.is_empty());
        for r in trace.records.iter().take(50) {
            assert!(r.src_as.index() < world.ases.len());
            assert!(r.dst_as.index() < world.ases.len());
        }
    }
}
