//! Poor Network Rate (PNR) aggregation and improvement accounting.
//!
//! §2.2 of the paper defines the PNR of a call population, per metric, as the
//! fraction of calls whose average value of that metric crosses the poor
//! threshold; the combined criterion counts calls with *at least one* poor
//! metric. §3.2 defines relative improvement of a statistic going from `b`
//! (baseline) to `a` as `100·(b−a)/b`.

use serde::{Deserialize, Serialize};
use via_model::metrics::{Metric, PathMetrics, Thresholds};

/// PNR of a call population, per metric and combined.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PnrReport {
    /// Number of calls aggregated.
    pub calls: usize,
    /// Fraction of calls with poor RTT.
    pub rtt: f64,
    /// Fraction of calls with poor loss.
    pub loss: f64,
    /// Fraction of calls with poor jitter.
    pub jitter: f64,
    /// Fraction of calls with at least one poor metric.
    pub any: f64,
}

impl PnrReport {
    /// Computes the PNR of a population of per-call metrics.
    pub fn from_calls<'a>(
        calls: impl IntoIterator<Item = &'a PathMetrics>,
        thresholds: &Thresholds,
    ) -> PnrReport {
        let mut n = 0usize;
        let mut poor = [0usize; 3];
        let mut any = 0usize;
        for m in calls {
            n += 1;
            let mut this_any = false;
            for (i, &metric) in Metric::ALL.iter().enumerate() {
                if thresholds.is_poor(m, metric) {
                    poor[i] += 1;
                    this_any = true;
                }
            }
            if this_any {
                any += 1;
            }
        }
        if n == 0 {
            return PnrReport::default();
        }
        let f = |c: usize| c as f64 / n as f64;
        PnrReport {
            calls: n,
            rtt: f(poor[0]),
            loss: f(poor[1]),
            jitter: f(poor[2]),
            any: f(any),
        }
    }

    /// PNR on one axis.
    pub fn for_metric(&self, m: Metric) -> f64 {
        match m {
            Metric::Rtt => self.rtt,
            Metric::Loss => self.loss,
            Metric::Jitter => self.jitter,
        }
    }
}

/// Relative improvement `100·(b−a)/b` of a statistic that went from `b`
/// (baseline, e.g. default routing) to `a` (treatment, e.g. VIA), as defined
/// in §3.2. Positive means the treatment is better; zero when the baseline
/// is already zero.
pub fn relative_improvement(baseline: f64, treatment: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - treatment) / baseline
    }
}

/// Per-metric and combined PNR improvements of a treatment over a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PnrImprovement {
    /// Improvement (%) of the RTT PNR.
    pub rtt: f64,
    /// Improvement (%) of the loss PNR.
    pub loss: f64,
    /// Improvement (%) of the jitter PNR.
    pub jitter: f64,
    /// Improvement (%) of the "at least one bad" PNR.
    pub any: f64,
}

impl PnrImprovement {
    /// Improvement of `treatment` over `baseline`.
    pub fn between(baseline: &PnrReport, treatment: &PnrReport) -> PnrImprovement {
        PnrImprovement {
            rtt: relative_improvement(baseline.rtt, treatment.rtt),
            loss: relative_improvement(baseline.loss, treatment.loss),
            jitter: relative_improvement(baseline.jitter, treatment.jitter),
            any: relative_improvement(baseline.any, treatment.any),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calls() -> Vec<PathMetrics> {
        vec![
            PathMetrics::new(50.0, 0.1, 2.0),   // good
            PathMetrics::new(400.0, 0.1, 2.0),  // poor rtt
            PathMetrics::new(50.0, 3.0, 2.0),   // poor loss
            PathMetrics::new(400.0, 3.0, 20.0), // poor all
        ]
    }

    #[test]
    fn pnr_counts_each_axis() {
        let r = PnrReport::from_calls(calls().iter(), &Thresholds::default());
        assert_eq!(r.calls, 4);
        assert_eq!(r.rtt, 0.5);
        assert_eq!(r.loss, 0.5);
        assert_eq!(r.jitter, 0.25);
        assert_eq!(r.any, 0.75);
    }

    #[test]
    fn any_is_at_least_max_axis() {
        let r = PnrReport::from_calls(calls().iter(), &Thresholds::default());
        for m in Metric::ALL {
            assert!(r.any >= r.for_metric(m));
        }
    }

    #[test]
    fn empty_population() {
        let r = PnrReport::from_calls([].iter(), &Thresholds::default());
        assert_eq!(r.calls, 0);
        assert_eq!(r.any, 0.0);
    }

    #[test]
    fn relative_improvement_formula() {
        assert_eq!(relative_improvement(0.4, 0.2), 50.0);
        assert_eq!(relative_improvement(0.4, 0.4), 0.0);
        assert_eq!(relative_improvement(0.0, 0.1), 0.0);
        // A regression yields a negative improvement.
        assert_eq!(relative_improvement(0.2, 0.4), -100.0);
    }

    #[test]
    fn improvement_between_reports() {
        let base = PnrReport {
            calls: 100,
            rtt: 0.2,
            loss: 0.1,
            jitter: 0.4,
            any: 0.5,
        };
        let treat = PnrReport {
            calls: 100,
            rtt: 0.1,
            loss: 0.1,
            jitter: 0.1,
            any: 0.2,
        };
        let imp = PnrImprovement::between(&base, &treat);
        assert_eq!(imp.rtt, 50.0);
        assert_eq!(imp.loss, 0.0);
        assert_eq!(imp.jitter, 75.0);
        assert_eq!(imp.any, 60.0);
    }
}
