//! The ITU-T E-model (G.107) as simplified by Cole & Rosenbluth for VoIP
//! monitoring — the MOS model the paper cites (its reference 17) and uses in §2.2.
//!
//! The transmission rating factor `R` starts from a base of 94.2 (G.711
//! defaults) and is reduced by a delay impairment `Id` and an
//! equipment/loss impairment `Ie`:
//!
//! ```text
//! R   = 94.2 − Id − Ie
//! Id  = 0.024·d + 0.11·(d − 177.3)·H(d − 177.3)
//! Ie  = γ₁ + γ₂·ln(1 + γ₃·e)        (G.711: γ = 0, 30, 15)
//! MOS = 1 + 0.035·R + 7·10⁻⁶·R·(R − 60)·(100 − R)   clamped to [1, 4.5]
//! ```
//!
//! where `d` is the one-way mouth-to-ear delay in milliseconds and `e` the
//! effective loss fraction. Jitter enters through the playout buffer: a
//! deeper buffer adds delay, a shallower one discards late packets and adds
//! to the effective loss (§ "jitter mapping" below, following common
//! E-model practice).

use serde::{Deserialize, Serialize};
use via_model::metrics::PathMetrics;

/// Configuration of the E-model evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EModelConfig {
    /// Base rating factor (G.711 default transmission chain).
    pub r_base: f64,
    /// Codec + packetization + playout base delay added to the network
    /// one-way delay, ms.
    pub codec_delay_ms: f64,
    /// Playout (jitter) buffer depth as a multiple of the measured jitter.
    pub jitter_buffer_mult: f64,
    /// Fraction of packets arriving later than the buffer depth per ms of
    /// jitter beyond the absorbed amount — converts residual jitter into
    /// effective loss.
    pub late_loss_per_ms: f64,
    /// Loss-impairment curve γ₂ (G.711: 30).
    pub gamma2: f64,
    /// Loss-impairment curve γ₃ (G.711: 15).
    pub gamma3: f64,
}

impl Default for EModelConfig {
    fn default() -> Self {
        Self {
            r_base: 94.2,
            codec_delay_ms: 25.0,
            jitter_buffer_mult: 2.0,
            late_loss_per_ms: 0.0025,
            gamma2: 30.0,
            gamma3: 15.0,
        }
    }
}

impl EModelConfig {
    /// Delay impairment `Id` for a one-way delay `d` ms.
    pub fn delay_impairment(&self, d_ms: f64) -> f64 {
        let d = d_ms.max(0.0);
        let knee = if d > 177.3 { 0.11 * (d - 177.3) } else { 0.0 };
        0.024 * d + knee
    }

    /// Loss impairment `Ie` for an effective loss fraction `e ∈ [0, 1]`.
    pub fn loss_impairment(&self, e: f64) -> f64 {
        self.gamma2 * (1.0 + self.gamma3 * e.clamp(0.0, 1.0)).ln()
    }

    /// Maps the R factor to MOS on the standard 1–4.5 scale.
    pub fn r_to_mos(&self, r: f64) -> f64 {
        if r <= 0.0 {
            return 1.0;
        }
        if r >= 100.0 {
            return 4.5;
        }
        let mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r);
        mos.clamp(1.0, 4.5)
    }

    /// Full pipeline: averaged per-call network metrics → MOS.
    ///
    /// The one-way network delay is half the measured RTT. The playout buffer
    /// is sized at `jitter_buffer_mult × jitter`, contributing both delay and
    /// (for the jitter the buffer cannot absorb) late-discard loss.
    pub fn mos(&self, m: &PathMetrics) -> f64 {
        let one_way = m.rtt_ms / 2.0;
        let buffer_delay = self.jitter_buffer_mult * m.jitter_ms;
        let d = one_way + self.codec_delay_ms + buffer_delay;

        // Residual late loss: the tail of the jitter distribution beyond the
        // buffer. Approximated as linear in the jitter magnitude.
        let late = (self.late_loss_per_ms * m.jitter_ms).min(0.2);
        let network_loss = (m.loss_pct / 100.0).clamp(0.0, 1.0);
        let e = 1.0 - (1.0 - network_loss) * (1.0 - late);

        let r = self.r_base - self.delay_impairment(d) - self.loss_impairment(e);
        self.r_to_mos(r)
    }
}

/// Convenience: MOS with the default configuration.
pub fn mos(metrics: &PathMetrics) -> f64 {
    EModelConfig::default().mos(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_network_is_toll_quality() {
        let m = PathMetrics::new(20.0, 0.0, 0.5);
        let s = mos(&m);
        assert!(s > 4.2, "near-perfect call scored {s}");
    }

    #[test]
    fn terrible_network_is_bad() {
        let m = PathMetrics::new(800.0, 10.0, 60.0);
        let s = mos(&m);
        assert!(s < 2.0, "terrible call scored {s}");
    }

    #[test]
    fn delay_impairment_knee_at_177ms() {
        let c = EModelConfig::default();
        let below = c.delay_impairment(177.0);
        let above = c.delay_impairment(277.0);
        // Slope below the knee is 0.024/ms; above it 0.134/ms.
        assert!((below - 0.024 * 177.0).abs() < 1e-9);
        assert!((above - (0.024 * 277.0 + 0.11 * (277.0 - 177.3))).abs() < 1e-9);
    }

    #[test]
    fn loss_impairment_matches_g711_curve() {
        let c = EModelConfig::default();
        assert_eq!(c.loss_impairment(0.0), 0.0);
        // 5% loss: 30·ln(1+0.75) ≈ 16.79.
        assert!((c.loss_impairment(0.05) - 30.0 * 1.75f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn r_to_mos_anchors() {
        let c = EModelConfig::default();
        assert_eq!(c.r_to_mos(-5.0), 1.0);
        assert_eq!(c.r_to_mos(150.0), 4.5);
        // R = 93 → MOS ≈ 4.41 (textbook anchor ~4.4).
        let m = c.r_to_mos(93.0);
        assert!((m - 4.4).abs() < 0.05, "R=93 gave MOS {m}");
        // R = 50 → MOS ≈ 2.58.
        let m50 = c.r_to_mos(50.0);
        assert!((m50 - 2.6).abs() < 0.1, "R=50 gave MOS {m50}");
    }

    #[test]
    fn mos_monotone_in_each_metric() {
        let base = PathMetrics::new(150.0, 0.5, 5.0);
        let worse_rtt = PathMetrics::new(400.0, 0.5, 5.0);
        let worse_loss = PathMetrics::new(150.0, 4.0, 5.0);
        let worse_jit = PathMetrics::new(150.0, 0.5, 30.0);
        let b = mos(&base);
        assert!(mos(&worse_rtt) < b);
        assert!(mos(&worse_loss) < b);
        assert!(mos(&worse_jit) < b);
    }

    proptest! {
        #[test]
        fn mos_in_valid_range(rtt in 0f64..2000.0, loss in 0f64..100.0, jitter in 0f64..200.0) {
            let s = mos(&PathMetrics::new(rtt, loss, jitter));
            prop_assert!((1.0..=4.5).contains(&s));
        }

        #[test]
        fn mos_never_improves_with_more_loss(rtt in 0f64..600.0, jitter in 0f64..40.0, l1 in 0f64..20.0, l2 in 0f64..20.0) {
            let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
            let a = mos(&PathMetrics::new(rtt, lo, jitter));
            let b = mos(&PathMetrics::new(rtt, hi, jitter));
            prop_assert!(b <= a + 1e-9);
        }
    }
}
