//! The user star-rating model.
//!
//! In the paper, a small random fraction of Skype calls receive a 1–5 star
//! rating from the user; ratings of 1 or 2 are "poor" and their frequency is
//! the Poor Call Rate (PCR, §2.2). Ratings are noisy: users disagree, and
//! factors other than the network (content, mood, device) move them. We model
//! the rating as the E-model MOS plus Gaussian user noise, discretized to the
//! 1–5 scale — enough structure to reproduce Figure 1's strong-but-not-
//! perfect PCR/metric correlations.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use via_model::metrics::PathMetrics;

use crate::emodel::EModelConfig;

/// Configuration of the rating model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingModel {
    /// The underlying objective-quality model.
    pub emodel: EModelConfig,
    /// Standard deviation of per-user rating noise (MOS points).
    pub user_noise_sd: f64,
    /// Global offset: users rate on the full 1–5 scale while MOS tops out at
    /// 4.5, so real ratings sit slightly above MOS for good calls.
    pub offset: f64,
    /// Fraction of calls that receive a rating at all (paper: "a small
    /// random fraction").
    pub rating_probability: f64,
}

impl Default for RatingModel {
    fn default() -> Self {
        Self {
            emodel: EModelConfig::default(),
            user_noise_sd: 0.65,
            offset: 0.3,
            rating_probability: 0.02,
        }
    }
}

impl RatingModel {
    /// Draws a user rating (1–5) for a call with the given averaged network
    /// metrics. Always returns a rating; use [`RatingModel::maybe_rate`] to
    /// model the sampling of which calls get rated.
    pub fn rate(&self, metrics: &PathMetrics, rng: &mut StdRng) -> u8 {
        let mos = self.emodel.mos(metrics) + self.offset;
        // Box–Muller keeps us independent of distribution crates here.
        let u1: f64 = rng.random::<f64>().max(1e-12);
        let u2: f64 = rng.random();
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let noisy = mos + self.user_noise_sd * gauss;
        noisy.round().clamp(1.0, 5.0) as u8
    }

    /// Rates the call only with probability `rating_probability`, mirroring
    /// the sparse feedback a deployed service sees.
    pub fn maybe_rate(&self, metrics: &PathMetrics, rng: &mut StdRng) -> Option<u8> {
        (rng.random::<f64>() < self.rating_probability).then(|| self.rate(metrics, rng))
    }

    /// True if a rating counts as "poor" (1 or 2 stars, §2.2).
    pub fn is_poor_rating(rating: u8) -> bool {
        rating <= 2
    }

    /// Expected probability that a call with these metrics is rated poor —
    /// the closed form of `P(rate(..) ≤ 2)` under the Gaussian noise model.
    /// Useful for tests and for plotting smooth PCR curves.
    pub fn poor_probability(&self, metrics: &PathMetrics) -> f64 {
        let mos = self.emodel.mos(metrics) + self.offset;
        // P(round(X) ≤ 2) = P(X < 2.5) with X ~ N(mos, sd²).
        let z = (2.5 - mos) / self.user_noise_sd;
        normal_cdf(z)
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max abs error ≈ 1.5e-7 — far below user-noise scale).
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn good_calls_rarely_poor() {
        let m = RatingModel::default();
        let good = PathMetrics::new(40.0, 0.05, 1.0);
        let mut r = rng();
        let poor = (0..5000)
            .filter(|_| RatingModel::is_poor_rating(m.rate(&good, &mut r)))
            .count();
        assert!(
            (poor as f64) / 5000.0 < 0.03,
            "good call rated poor {poor}/5000"
        );
    }

    #[test]
    fn bad_calls_mostly_poor() {
        let m = RatingModel::default();
        let bad = PathMetrics::new(900.0, 12.0, 60.0);
        let mut r = rng();
        let poor = (0..5000)
            .filter(|_| RatingModel::is_poor_rating(m.rate(&bad, &mut r)))
            .count();
        assert!(
            (poor as f64) / 5000.0 > 0.7,
            "bad call rated poor only {poor}/5000"
        );
    }

    #[test]
    fn poor_probability_matches_simulation() {
        let m = RatingModel::default();
        let mid = PathMetrics::new(420.0, 2.0, 15.0);
        let analytic = m.poor_probability(&mid);
        let mut r = rng();
        let sim = (0..20_000)
            .filter(|_| RatingModel::is_poor_rating(m.rate(&mid, &mut r)))
            .count() as f64
            / 20_000.0;
        assert!(
            (analytic - sim).abs() < 0.02,
            "analytic {analytic} vs simulated {sim}"
        );
    }

    #[test]
    fn poor_probability_monotone_in_rtt() {
        let m = RatingModel::default();
        let mut last = -1.0;
        for rtt in [50.0, 150.0, 300.0, 500.0, 800.0] {
            let p = m.poor_probability(&PathMetrics::new(rtt, 0.5, 5.0));
            assert!(p >= last, "PCR must grow with RTT");
            last = p;
        }
    }

    #[test]
    fn maybe_rate_respects_sampling() {
        let m = RatingModel {
            rating_probability: 0.1,
            ..RatingModel::default()
        };
        let mut r = rng();
        let metrics = PathMetrics::new(100.0, 0.2, 3.0);
        let rated = (0..10_000)
            .filter(|_| m.maybe_rate(&metrics, &mut r).is_some())
            .count();
        assert!((800..1200).contains(&rated), "rated {rated}/10000");
    }

    #[test]
    fn rating_bounds() {
        let m = RatingModel::default();
        let mut r = rng();
        for _ in 0..1000 {
            let rating = m.rate(&PathMetrics::new(300.0, 1.0, 10.0), &mut r);
            assert!((1..=5).contains(&rating));
        }
    }

    #[test]
    fn normal_cdf_anchors() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
