//! Call-quality models for the VIA reproduction.
//!
//! Maps network path metrics to user-perceived quality:
//!
//! * [`emodel`] — the ITU-T E-model / Cole–Rosenbluth MOS calculator the
//!   paper uses in §2.2 (its reference 17): delay and loss impairments with a
//!   jitter-buffer mapping for jitter.
//! * [`rating`] — the 1–5 star user-rating model (MOS + user noise); ratings
//!   ≤ 2 are "poor" and their rate is the Poor Call Rate (PCR).
//! * [`pnr`] — Poor Network Rate aggregation over call populations and the
//!   paper's relative-improvement arithmetic (`100·(b−a)/b`).
//!
//! ```
//! use via_model::PathMetrics;
//! use via_quality::emodel;
//!
//! let good = PathMetrics::new(60.0, 0.1, 2.0);
//! let bad = PathMetrics::new(500.0, 5.0, 30.0);
//! assert!(emodel::mos(&good) > 4.0);
//! assert!(emodel::mos(&bad) < 2.5);
//! ```

#![warn(missing_docs)]

pub mod emodel;
pub mod pnr;
pub mod rating;

pub use emodel::{mos, EModelConfig};
pub use pnr::{relative_improvement, PnrImprovement, PnrReport};
pub use rating::RatingModel;
