//! Replay-engine benchmark suite: replay throughput at small and paper
//! scale, predictor-fit latency, and the sharded-vs-sequential worker sweep.
//! Emits `BENCH_replay.json` at the workspace root to start the perf
//! trajectory tracked by the ROADMAP.
//!
//! Uses a custom `main` (`harness = false` without the criterion macros):
//! the compat criterion entry point does not parse CLI arguments, and this
//! suite needs `--quick` (CI smoke: tiny scale, no paper-scale sweep) plus
//! its own JSON emission alongside the criterion console lines.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use via_core::history::CallHistory;
use via_core::predictor::{GeoPrior, Predictor, PredictorConfig};
use via_core::replay::{ReplayConfig, ReplaySim};
use via_core::strategy::StrategyKind;
use via_core::KeyPair;
use via_model::ids::RelayId;
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::{SimTime, WindowLen};
use via_netsim::{World, WorldConfig};
use via_trace::stream::FileSource;
use via_trace::{Trace, TraceConfig, TraceGenerator};

/// One timed replay run and its engine counters.
#[derive(Debug, Serialize)]
struct RunRecord {
    scale: String,
    strategy: String,
    workers_requested: usize,
    workers_resolved: usize,
    warm: bool,
    warmed_segments: u64,
    calls: usize,
    wall_ms: f64,
    calls_per_sec: f64,
    predictor_fits: u64,
    /// Per-phase wall-time split of `wall_ms` (budget-gate pass, parallel
    /// shard processing, deterministic merge, predictor refits) — where a
    /// run actually spends its time, not just the total.
    gate_ms: f64,
    shard_ms: f64,
    merge_ms: f64,
    predictor_fit_ms: f64,
    shard_utilization: f64,
    controller_contacts: u64,
}

/// Worker-sweep outcome at one scale: per-worker-count wall times plus the
/// determinism check (identical per-call results for every worker count).
#[derive(Debug, Serialize)]
struct Sweep {
    scale: String,
    warm: bool,
    workers: Vec<usize>,
    workers_resolved: Vec<usize>,
    wall_ms: Vec<f64>,
    /// Whether speedup/efficiency figures mean anything on this host: false
    /// when the process can only use one core (`usable_parallelism == 1`),
    /// where a "speedup" line would only measure coordination overhead. The
    /// scaling vectors are left empty in that case rather than reporting
    /// numbers that lie.
    scaling_valid: bool,
    speedup_vs_sequential: Vec<f64>,
    /// Speedup divided by the resolved worker count: 1.0 = perfectly linear
    /// scaling, the regression-gated figure of merit for the engine.
    scaling_efficiency: Vec<f64>,
    results_identical: bool,
}

/// `sample_option` hot-path microbenchmark: the per-call world-model cost
/// every strategy pays (segment lookups + noise draws, no allocation).
#[derive(Debug, Serialize)]
struct SampleRecord {
    options_sampled: usize,
    /// Batched scratch path (`sample_option_scratch`) — what the replay
    /// engine actually runs per call: segment means memoized across the
    /// options scored at one instant.
    ns_per_sample: f64,
    /// Scratch-free reference path, for the amortization ratio.
    ns_per_sample_plain: f64,
}

/// One streamed replay run: the bounded-memory engine fed by a record
/// source, with the process peak-RSS reading taken right after the run.
#[derive(Debug, Serialize)]
struct StreamRecord {
    scale: String,
    /// Record source: `generate` (on-the-fly) or `binary` (a `.vbt` file).
    source: String,
    /// Resolved worker count the run used.
    workers: usize,
    calls: u64,
    windows: u64,
    wall_ms: f64,
    calls_per_sec: f64,
    /// Bytes decoded from the backing file (header, framing, payload);
    /// zero for generate-on-the-fly.
    bytes_decoded: u64,
    bytes_decoded_per_sec: f64,
    /// `VmHWM` right after the run, in bytes. The kernel counter is
    /// process-monotone, which is why the streaming section runs *first*
    /// in `main()`: these readings bound the streaming engine's footprint,
    /// not whatever a preceding materialized run faulted in.
    peak_rss_bytes: u64,
    /// Order-sensitive FNV-1a digest over every call outcome (hex) —
    /// identical across worker counts and across the streamed and
    /// materialized engines for the same inputs.
    digest: String,
}

/// Live-controller (via-server) closed-loop load results: the sustained
/// select/report plane, in-process and over a loopback socket.
#[derive(Debug, Clone, Serialize)]
struct ServerRecord {
    /// Selections measured in the in-process phase.
    selections: u64,
    /// Sustained in-process selections/sec (closed loop: one report per
    /// four selects, spanning a window rollover).
    in_process_selections_per_sec: f64,
    /// Upper edge of the histogram bucket holding the p50 select latency,
    /// microseconds (from the controller's own per-shard histogram).
    in_process_p50_us: f64,
    /// Upper edge of the bucket holding the p99 select latency, µs.
    in_process_p99_us: f64,
    /// Predictor publishes observed during the run.
    refit_epochs: u64,
    /// Round trips measured over the loopback socket phase.
    socket_round_trips: u64,
    /// Sustained select round trips/sec over one loopback connection.
    socket_round_trips_per_sec: f64,
    /// Client-measured p99 select round-trip latency over the socket, µs.
    socket_p99_us: f64,
}

#[derive(Debug, Serialize)]
struct FitRecord {
    cells: usize,
    sequential_ms: f64,
    parallel_ms: f64,
}

/// Cost of the via-obs instrumentation layer: the same replay with the
/// metric sink off vs on. The on-path records every counter, histogram
/// observation, and per-window span the engine emits.
#[derive(Debug, Clone, Serialize)]
struct ObsRecord {
    scale: String,
    /// Mean of the fastest half of the uninstrumented walls.
    wall_ms_off: f64,
    /// Mean of the fastest half of the instrumented walls.
    wall_ms_on: f64,
    /// Relative slowdown of the instrumented run (0.05 = 5 % overhead):
    /// `wall_ms_on / wall_ms_off − 1`. Host noise is strictly additive
    /// (interruptions only slow a run down), so the fastest half of each
    /// side's walls over many alternating repetitions is the clean
    /// cluster; its mean is the cost estimate — see
    /// [`bench_metrics_overhead`].
    overhead_frac: f64,
    counters: usize,
    histograms: usize,
    spans: usize,
}

/// Multipath-vs-singlepath replay cost: what the redundant path set (extra
/// per-path realizations + the receiver-side merge model) costs per call,
/// relative to singlepath VIA on the same inputs.
#[derive(Debug, Clone, Serialize)]
struct MultipathRecord {
    scale: String,
    /// Fastest-half mean wall of singlepath VIA runs, ms.
    wall_ms_singlepath: f64,
    /// Fastest-half mean wall of `multipath-dup-2` runs, ms.
    wall_ms_multipath: f64,
    /// Per-call cost ratio (`wall_ms_multipath / wall_ms_singlepath` over
    /// identical call counts). The acceptance gate holds this ≤ 2.5: a
    /// duplicated call realizes two paths and merges them, so ~2x is the
    /// honest floor and anything past 2.5x is merge-model bloat.
    cost_ratio: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    quick: bool,
    /// Online CPUs on the host (from `/proc/cpuinfo`): the hardware the
    /// scaling targets are judged against.
    host_cores: usize,
    /// Parallelism actually usable by this process (affinity / cgroup
    /// masks applied) — what `workers: 0` resolves against.
    usable_parallelism: usize,
    runs: Vec<RunRecord>,
    sweeps: Vec<Sweep>,
    /// Streamed bounded-memory replays (peak-RSS and decode-throughput
    /// acceptance measurements); always the first section executed — see
    /// [`bench_streaming`].
    streams: Vec<StreamRecord>,
    predictor_fit: FitRecord,
    sample_option: SampleRecord,
    /// Primary instrumentation-overhead figure: measured on the paper-scale
    /// *world* in both modes — the full suite replays the real paper trace,
    /// `--quick` a shortened one (same per-call cost profile: same candidate
    /// density, same segment mix; just fewer calls). The <5% regression gate
    /// runs against this record, because at paper scale a call's budget is
    /// real scoring/realization work rather than fixed bookkeeping.
    metrics_overhead: ObsRecord,
    /// Tiny-scale overhead, always measured: comparable across quick and
    /// full runs of the suite.
    metrics_overhead_tiny: ObsRecord,
    /// Multipath replay cost relative to singlepath, gated at ≤ 2.5x per
    /// call (see [`MultipathRecord::cost_ratio`]).
    multipath: MultipathRecord,
    /// Live-controller select/report plane (via-server): sustained
    /// selections/sec and select-latency percentiles, in-process and over a
    /// loopback socket. The ≥100k selections/s and p99 ≤100 µs acceptance
    /// gates run against the in-process figures of the full suite.
    server: ServerRecord,
}

/// Online CPU count of the host. `available_parallelism()` alone respects
/// affinity and cgroup masks and so under-reports the machine (it returned 1
/// in pinned CI containers — the `host_cores` reporting bug this fixes);
/// counting `processor` entries in `/proc/cpuinfo` sees the real host, with
/// `available_parallelism()` as the floor and non-Linux fallback.
fn host_cores() -> usize {
    let online = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    online.max(usable_parallelism())
}

/// Parallelism usable by this process (affinity-respecting).
fn usable_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn env(world_cfg: &WorldConfig, trace_cfg: TraceConfig, seed: u64) -> (World, Trace) {
    let world = World::generate(world_cfg, seed);
    let trace = TraceGenerator::new(&world, trace_cfg, seed).generate();
    (world, trace)
}

/// Runs one replay, timing it and extracting the engine counters.
fn timed_run(
    world: &World,
    trace: &Trace,
    kind: StrategyKind,
    workers: usize,
    warm: bool,
    scale: &str,
) -> (RunRecord, via_core::Outcome) {
    let cfg = ReplayConfig {
        workers,
        warm,
        ..ReplayConfig::default()
    };
    let start = Instant::now();
    let outcome = ReplaySim::new(world, trace, cfg).run(kind);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let record = RunRecord {
        scale: scale.to_string(),
        strategy: kind.name().to_string(),
        workers_requested: workers,
        workers_resolved: outcome.stats.workers,
        warm,
        warmed_segments: outcome.stats.warmed_segments,
        calls: outcome.calls.len(),
        wall_ms,
        calls_per_sec: outcome.calls.len() as f64 / (wall_ms / 1e3),
        predictor_fits: outcome.stats.predictor_fits,
        gate_ms: outcome.stats.gate_ms,
        shard_ms: outcome.stats.shard_ms,
        merge_ms: outcome.stats.merge_ms,
        predictor_fit_ms: outcome.stats.predictor_fit_ms,
        shard_utilization: outcome.stats.shard_utilization(),
        controller_contacts: outcome.controller_contacts,
    };
    println!(
        "replay_engine/{scale}/{}{}/workers={workers:<2} {:>10.1} ms  ({:.0} calls/s)  [{}]",
        kind.name(),
        if warm { "+warm" } else { "" },
        record.wall_ms,
        record.calls_per_sec,
        outcome.stats.summary()
    );
    (record, outcome)
}

/// Same per-call results regardless of worker count (the byte-level JSON
/// check lives in via-core's tests; this structural check avoids holding
/// multi-hundred-MB JSON strings at paper scale).
fn same_results(a: &via_core::Outcome, b: &via_core::Outcome) -> bool {
    a.calls == b.calls
        && a.controller_contacts == b.controller_contacts
        && a.race_probes == b.race_probes
}

/// Worker sweep at one scale: sequential, then sharded counts; records
/// speedups and cross-checks determinism.
fn sweep(
    world: &World,
    trace: &Trace,
    scale: &str,
    warm: bool,
    worker_counts: &[usize],
    scaling_valid: bool,
    runs: &mut Vec<RunRecord>,
) -> Sweep {
    let mut wall_ms = Vec::new();
    let mut resolved = Vec::new();
    let mut baseline: Option<via_core::Outcome> = None;
    let mut identical = true;
    for &w in worker_counts {
        let (record, outcome) = timed_run(world, trace, StrategyKind::Via, w, warm, scale);
        wall_ms.push(record.wall_ms);
        resolved.push(record.workers_resolved);
        runs.push(record);
        match &baseline {
            None => baseline = Some(outcome),
            Some(b) => identical &= same_results(b, &outcome),
        }
    }
    // On a one-core host a speedup line would only report coordination
    // overhead as if it were scaling — leave the derived vectors empty and
    // keep the raw wall times.
    let (speedups, efficiency) = if scaling_valid {
        let sequential = wall_ms[0];
        let speedups: Vec<f64> = wall_ms.iter().map(|&t| sequential / t).collect();
        let efficiency = speedups
            .iter()
            .zip(&resolved)
            .map(|(&s, &w)| s / w.max(1) as f64)
            .collect();
        (speedups, efficiency)
    } else {
        println!(
            "replay_engine/{scale}: scaling figures suppressed \
             (usable_parallelism == 1; wall times recorded, speedups omitted)"
        );
        (Vec::new(), Vec::new())
    };
    Sweep {
        scale: scale.to_string(),
        warm,
        workers: worker_counts.to_vec(),
        workers_resolved: resolved,
        wall_ms,
        scaling_valid,
        speedup_vs_sequential: speedups,
        scaling_efficiency: efficiency,
        results_identical: identical,
    }
}

/// Times the zero-allocation `sample_option` hot path: candidate options of
/// a trace-like pair set, segments prewarmed, CRN-style per-sample RNG.
fn bench_sample_option(c: &mut Criterion, world: &World) -> SampleRecord {
    let t = via_model::time::SimTime::from_days(3);
    // A representative option set: every candidate of a band of AS pairs.
    let n_ases = world.ases.len();
    let mut work: Vec<(via_model::ids::AsId, via_model::ids::AsId, RelayOption)> = Vec::new();
    for i in 0..n_ases.min(12) {
        let src = world.ases[i].id;
        let dst = world.ases[(i + n_ases / 2) % n_ases].id;
        for opt in world.candidate_options(src, dst) {
            work.push((src, dst, opt));
        }
    }
    let mut rng = StdRng::seed_from_u64(42);
    // Warm every touched segment first so the measurement isolates the
    // steady-state read path, not first-touch latent generation.
    for &(src, dst, opt) in &work {
        black_box(world.perf().sample_option(src, dst, opt, t, &mut rng));
    }

    // The engine's actual hot path: one scratch carried across a batch of
    // candidates, segment means memoized per instant.
    let mut scratch = via_netsim::SampleScratch::new();
    let mut g = c.benchmark_group("replay_engine");
    g.bench_function("sample_option", |b| {
        b.iter(|| {
            for &(src, dst, opt) in &work {
                black_box(world.perf().sample_option_scratch(
                    src,
                    dst,
                    opt,
                    t,
                    &mut rng,
                    &mut scratch,
                ));
            }
        })
    });
    g.finish();

    let reps = 200usize;
    let start = Instant::now();
    for _ in 0..reps {
        for &(src, dst, opt) in &work {
            black_box(
                world
                    .perf()
                    .sample_option_scratch(src, dst, opt, t, &mut rng, &mut scratch),
            );
        }
    }
    let total = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for _ in 0..reps {
        for &(src, dst, opt) in &work {
            black_box(world.perf().sample_option(src, dst, opt, t, &mut rng));
        }
    }
    let total_plain = start.elapsed().as_secs_f64();
    let samples = (reps * work.len()).max(1) as f64;
    let record = SampleRecord {
        options_sampled: work.len(),
        ns_per_sample: total * 1e9 / samples,
        ns_per_sample_plain: total_plain * 1e9 / samples,
    };
    println!(
        "replay_engine/sample_option: {:.0} ns/sample batched ({:.0} ns/sample plain) over {} options",
        record.ns_per_sample, record.ns_per_sample_plain, record.options_sampled
    );
    record
}

/// Predictor-fit latency on a synthetic dense window, sequential vs all
/// cores. Criterion times the steady state; the JSON records single-shot
/// wall times from the same closure.
fn bench_predictor_fit(c: &mut Criterion) -> FitRecord {
    // A dense window: 2 000 pairs × 4 options, 6 samples each.
    let mut history = CallHistory::new();
    let window = WindowLen::DAY.window_of(SimTime::ZERO);
    let mut metrics = PathMetrics {
        rtt_ms: 120.0,
        loss_pct: 0.4,
        jitter_ms: 4.0,
    };
    for pair_idx in 0..2_000u32 {
        let pair = KeyPair::new(pair_idx % 97, pair_idx / 97);
        for option in [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(pair_idx % 7)),
            RelayOption::Bounce(RelayId(pair_idx % 5 + 7)),
            RelayOption::Transit(RelayId(pair_idx % 3), RelayId(pair_idx % 4 + 3)),
        ] {
            for sample in 0..6 {
                metrics.rtt_ms = 80.0 + f64::from((pair_idx + sample) % 120);
                history.record(window, pair, option, &metrics);
            }
        }
    }
    let cells = history.window_len(window);
    let prior = || GeoPrior::new(Vec::new(), Vec::new());
    let backbone = || {
        Box::new(|_: RelayId, _: RelayId| PathMetrics {
            rtt_ms: 40.0,
            loss_pct: 0.05,
            jitter_ms: 1.0,
        })
    };
    let fit = |workers: usize| {
        let cfg = PredictorConfig {
            workers,
            ..PredictorConfig::default()
        };
        Predictor::fit(&history, window, prior(), backbone(), cfg)
    };

    let mut g = c.benchmark_group("predictor_fit");
    g.bench_function("sequential", |b| b.iter(|| black_box(fit(1))));
    g.bench_function("all_cores", |b| b.iter(|| black_box(fit(0))));
    g.finish();

    let t = Instant::now();
    black_box(fit(1));
    let sequential_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    black_box(fit(0));
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    FitRecord {
        cells,
        sequential_ms,
        parallel_ms,
    }
}

/// Measures the via-obs sink's cost on the replay hot path: identical VIA
/// replays with `metrics` off and on.
///
/// The estimator is built for drifty hosts, where measurement noise is
/// *strictly additive*: interruptions (scheduler preemption, noisy
/// neighbors, frequency dips) only ever make a run slower, never faster —
/// characterization on this suite saw per-pair on/off ratios spanning
/// −16%..+39% on the same build. Under additive noise the clean signal
/// lives in the fast tail, so each of `reps` repetitions runs the off/on
/// pair in alternating order (drift cannot systematically favor one side)
/// and the reported overhead compares the *mean of the fastest half* of
/// each side's walls. That trims the contaminated slow tail entirely while
/// averaging enough clean runs that the figure does not ride on a single
/// lucky wall the way a pure min-vs-min does (min-ratio rounds swung
/// ±2–3 % between invocations; fastest-half rounds stay within ~1 %). The
/// per-pair ratio spread is still printed so a noisy invocation is visible
/// in the log. Asserts the instrumented run still produced a full snapshot
/// (the bench doubles as a smoke test that the counters survive the worker
/// merge).
fn bench_metrics_overhead(world: &World, trace: &Trace, scale: &str, reps: usize) -> ObsRecord {
    let run = |metrics: bool| {
        let cfg = ReplayConfig {
            metrics,
            ..ReplayConfig::default()
        };
        let start = Instant::now();
        let outcome = ReplaySim::new(world, trace, cfg).run(StrategyKind::Via);
        (start.elapsed().as_secs_f64() * 1e3, outcome)
    };
    // Throwaway run: pays the first-touch segment builds (and faults the
    // slot tables in) so both measured sides see the same steady state —
    // otherwise whichever side runs first eats the cold-world cost.
    let _ = run(false);
    let mut walls_off = Vec::with_capacity(reps);
    let mut walls_on = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    let mut snap: Option<via_obs::MetricsSnapshot> = None;
    for rep in 0..reps {
        let measure_off = || {
            let (w, outcome) = run(false);
            assert!(outcome.obs.is_none(), "metrics=false must not record");
            w
        };
        let measure_on = |snap: &mut Option<via_obs::MetricsSnapshot>| {
            let (w, outcome) = run(true);
            *snap = Some(outcome.obs.expect("metrics=true records a snapshot"));
            w
        };
        let (off, on) = if rep % 2 == 0 {
            let off = measure_off();
            let on = measure_on(&mut snap);
            (off, on)
        } else {
            let on = measure_on(&mut snap);
            let off = measure_off();
            (off, on)
        };
        walls_off.push(off);
        walls_on.push(on);
        ratios.push(on / off);
    }
    ratios.sort_by(f64::total_cmp);
    let fastest_half_mean = |walls: &mut Vec<f64>| {
        walls.sort_by(f64::total_cmp);
        let k = (walls.len() / 2).max(1);
        walls[..k].iter().sum::<f64>() / k as f64
    };
    let wall_off = fastest_half_mean(&mut walls_off);
    let wall_on = fastest_half_mean(&mut walls_on);
    let overhead_frac = wall_on / wall_off - 1.0;
    let snap = snap.expect("at least one instrumented run");
    assert!(
        snap.counter("replay_calls_total") > 0,
        "instrumented replay recorded no calls"
    );
    let record = ObsRecord {
        scale: scale.to_string(),
        wall_ms_off: wall_off,
        wall_ms_on: wall_on,
        overhead_frac,
        counters: snap.counters.len(),
        histograms: snap.histograms.len(),
        spans: snap.spans.len(),
    };
    println!(
        "replay_engine/{scale}/metrics_overhead: {:.1} ms off vs {:.1} ms on \
         ({:+.1}% fastest-half mean; {} pair ratios spanning {:+.1}%..{:+.1}% — \
         {} counters, {} histograms, {} spans)",
        record.wall_ms_off,
        record.wall_ms_on,
        100.0 * record.overhead_frac,
        ratios.len(),
        100.0 * (ratios.first().copied().unwrap_or(1.0) - 1.0),
        100.0 * (ratios.last().copied().unwrap_or(1.0) - 1.0),
        record.counters,
        record.histograms,
        record.spans,
    );
    record
}

/// Times singlepath VIA against 2-path duplicate multipath on the same
/// inputs, alternating the order each repetition (same noise discipline as
/// [`bench_metrics_overhead`]: host interruptions are strictly additive, so
/// the fastest-half means are the clean clusters).
fn bench_multipath(world: &World, trace: &Trace, scale: &str, reps: usize) -> MultipathRecord {
    let run = |kind: StrategyKind| {
        let start = Instant::now();
        let outcome = ReplaySim::new(world, trace, ReplayConfig::default()).run(kind);
        (start.elapsed().as_secs_f64() * 1e3, outcome)
    };
    let single = StrategyKind::Via;
    let multi = StrategyKind::Multipath {
        k: 2,
        mode: via_core::strategy::MultipathMode::Duplicate,
        budget: 1.0,
    };
    // Throwaway run pays the first-touch segment builds for both sides.
    let _ = run(single);
    let mut walls_single = Vec::with_capacity(reps);
    let mut walls_multi = Vec::with_capacity(reps);
    for rep in 0..reps {
        let (s, m) = if rep % 2 == 0 {
            (run(single).0, run(multi).0)
        } else {
            let m = run(multi).0;
            (run(single).0, m)
        };
        walls_single.push(s);
        walls_multi.push(m);
    }
    let fastest_half_mean = |walls: &mut Vec<f64>| {
        walls.sort_by(f64::total_cmp);
        let k = (walls.len() / 2).max(1);
        walls[..k].iter().sum::<f64>() / k as f64
    };
    let wall_single = fastest_half_mean(&mut walls_single);
    let wall_multi = fastest_half_mean(&mut walls_multi);
    let record = MultipathRecord {
        scale: scale.to_string(),
        wall_ms_singlepath: wall_single,
        wall_ms_multipath: wall_multi,
        cost_ratio: wall_multi / wall_single,
    };
    println!(
        "replay_engine/{scale}/multipath: {:.1} ms singlepath vs {:.1} ms \
         multipath-dup-2 ({:.2}x per call, gate 2.5x)",
        record.wall_ms_singlepath, record.wall_ms_multipath, record.cost_ratio,
    );
    record
}

/// Peak resident set size of this process so far (`VmHWM` from
/// `/proc/self/status`), in bytes; 0 when unreadable (non-Linux hosts).
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmHWM:")?
                    .trim()
                    .strip_suffix("kB")?
                    .trim()
                    .parse::<u64>()
                    .ok()
            })
        })
        .map_or(0, |kb| kb * 1024)
}

/// Builds the JSON record for one finished streamed run and prints its
/// console line. The peak-RSS reading is taken here, immediately after the
/// run it bounds.
fn stream_record(
    scale: &str,
    source: &str,
    outcome: &via_core::Outcome,
    wall_ms: f64,
) -> StreamRecord {
    let secs = wall_ms / 1e3;
    let record = StreamRecord {
        scale: scale.to_string(),
        source: source.to_string(),
        workers: outcome.stats.workers,
        calls: outcome.aggregate.calls,
        windows: outcome.stats.windows,
        wall_ms,
        calls_per_sec: outcome.aggregate.calls as f64 / secs,
        bytes_decoded: outcome.stats.bytes_decoded,
        bytes_decoded_per_sec: outcome.stats.bytes_decoded as f64 / secs,
        peak_rss_bytes: peak_rss_bytes(),
        digest: format!("{:#018x}", outcome.aggregate.digest),
    };
    println!(
        "replay_engine/stream/{scale}/{source}/workers={:<2} {:>10.1} ms  \
         ({:.0} calls/s, {:.1} MiB/s decoded, peak RSS {:.0} MiB, digest {})",
        record.workers,
        record.wall_ms,
        record.calls_per_sec,
        record.bytes_decoded_per_sec / (1024.0 * 1024.0),
        record.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        record.digest,
    );
    record
}

/// Streaming replay config: per-call outcomes off (materializing a
/// `Vec<CallOutcome>` at paper scale would defeat the bounded-memory mode
/// this section exists to measure).
fn stream_cfg(workers: usize) -> ReplayConfig {
    ReplayConfig {
        workers,
        collect_calls: false,
        ..ReplayConfig::default()
    }
}

/// One streamed VIA replay over a generate-on-the-fly source: records are
/// produced by the workload generator as the engine consumes them — no
/// trace is ever materialized.
fn streamed_gen_run(
    world: &World,
    trace_cfg: TraceConfig,
    seed: u64,
    workers: usize,
    scale: &str,
) -> StreamRecord {
    let generator = TraceGenerator::new(world, trace_cfg, seed);
    let sim = ReplaySim::streaming(world, stream_cfg(workers));
    let start = Instant::now();
    let outcome = sim
        .run_stream(generator.stream(), StrategyKind::Via)
        .expect("a generate-on-the-fly source cannot fail to decode");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    stream_record(scale, "generate", &outcome, wall_ms)
}

/// One streamed VIA replay over an on-disk trace file (the `bytes_decoded`
/// throughput path).
fn streamed_file_run(world: &World, path: &Path, workers: usize, scale: &str) -> StreamRecord {
    let source = FileSource::open(path).expect("open trace file");
    let sim = ReplaySim::streaming(world, stream_cfg(workers));
    let start = Instant::now();
    let outcome = sim
        .run_stream(source, StrategyKind::Via)
        .expect("stream trace file");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    stream_record(scale, "binary", &outcome, wall_ms)
}

/// Streaming data-plane section. Runs **first** in `main()` (before any
/// materialized replay) because `VmHWM` is process-monotone: only a fresh
/// process gives peak-RSS readings that actually bound the streaming
/// engine.
///
/// Tiny scale (always): generate-on-the-fly at two worker counts plus a
/// `.vbt` file source, cross-checked digest-identical to a materialized
/// run. Full suite adds the acceptance measurement: a paper-scale streamed
/// replay (~2.24 M calls) and a 10×-horizon run (560 days, 22.4 M calls —
/// the paper's own 430 M-call scale per unit of synthetic density) that
/// must stay under 1 GiB peak RSS with near-flat growth across the 10×
/// trace length.
fn bench_streaming(quick: bool) -> Vec<StreamRecord> {
    let mut streams = Vec::new();

    // Tiny: every source kind, digest-checked against the materialized
    // engine (the byte-level serialization matrix lives in via-core's
    // tests; this is the smoke-level invariant on real bench hardware).
    let (world, trace) = env(&WorldConfig::tiny(), TraceConfig::tiny(), 7);
    let dir = std::env::temp_dir().join("via-bench-stream");
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let vbt = dir.join("tiny.vbt");
    via_trace::binfmt::write_binary(&trace, &vbt).expect("write tiny .vbt");
    streams.push(streamed_gen_run(&world, TraceConfig::tiny(), 7, 1, "tiny"));
    streams.push(streamed_gen_run(&world, TraceConfig::tiny(), 7, 2, "tiny"));
    streams.push(streamed_file_run(&world, &vbt, 1, "tiny"));
    let materialized = ReplaySim::new(&world, &trace, stream_cfg(1)).run(StrategyKind::Via);
    let want = format!("{:#018x}", materialized.aggregate.digest);
    for s in &streams {
        assert_eq!(
            s.digest, want,
            "streamed {}/{} digest diverged from the materialized engine",
            s.source, s.workers
        );
    }
    let _ = std::fs::remove_file(&vbt);

    if quick {
        return streams;
    }

    // Acceptance measurement: paper-scale density streamed at 1× and 10×
    // the trace length. Same calls/day, 10× the days (a 560-day world
    // horizon), so any RSS growth between the two readings is genuine
    // trace-length-dependent state, not bigger windows.
    let world = World::generate(&WorldConfig::paper_scale(), 7);
    let paper = streamed_gen_run(&world, TraceConfig::paper_scale(), 7, 0, "paper");
    let rss_paper = paper.peak_rss_bytes;
    streams.push(paper);
    drop(world);

    let world_cfg_10x = WorldConfig {
        horizon_days: 560,
        ..WorldConfig::paper_scale()
    };
    let trace_cfg_10x = TraceConfig {
        days: 560,
        ..TraceConfig::paper_scale()
    };
    let world = World::generate(&world_cfg_10x, 7);
    let paper10 = streamed_gen_run(&world, trace_cfg_10x, 7, 0, "paper10x");
    assert_eq!(
        paper10.calls, 22_400_000,
        "10x-horizon run must replay the full 22.4 M calls"
    );
    assert!(
        paper10.peak_rss_bytes < 1 << 30,
        "streamed 22.4 M-call replay peaked at {:.0} MiB (>= 1 GiB budget)",
        paper10.peak_rss_bytes as f64 / (1024.0 * 1024.0)
    );
    // Flatness: VmHWM is monotone, so the delta between the two readings is
    // exactly what the 10× run added on top of the 1× peak. The allowance
    // covers the 10×-horizon world itself (per-segment daily severity
    // curves are 10× longer) plus noise — not a window's worth of growth
    // per unit trace length.
    let growth = paper10.peak_rss_bytes.saturating_sub(rss_paper);
    assert!(
        growth < 256 << 20,
        "peak RSS grew {:.0} MiB across a 10x longer trace — streaming is \
         supposed to be flat in trace length",
        growth as f64 / (1024.0 * 1024.0)
    );
    streams.push(paper10);
    streams
}

/// Builds a tiny-world live controller with the same predictor inputs the
/// replay engine uses (AS-granularity geo prior, precomputed backbone legs).
fn server_under_test() -> (
    std::sync::Arc<via_server::Controller>,
    u32,
    Vec<RelayOption>,
) {
    let world = World::generate(&WorldConfig::tiny(), 7);
    let granularity = via_core::replay::SpatialGranularity::As;
    let key_positions = granularity.key_positions(&world);
    let n_keys = u32::try_from(key_positions.len()).expect("key count fits u32");
    let prior = GeoPrior::new(key_positions, world.relays.iter().map(|r| r.pos).collect());
    let n_relays = world.relays.len();
    let mut legs = Vec::with_capacity(n_relays * n_relays);
    for i in 0..n_relays {
        for j in 0..n_relays {
            legs.push(
                world
                    .perf()
                    .backbone_metrics(RelayId(i as u32), RelayId(j as u32)),
            );
        }
    }
    let backbone: via_core::BackboneFn = std::sync::Arc::new(move |a: RelayId, b: RelayId| {
        legs[a.0 as usize * n_relays + b.0 as usize]
    });
    let cfg = via_server::ServerConfig {
        seed: 7,
        window: WindowLen::hours(1),
        epsilon: 0.05,
        budget: Some(0.3),
        shards: 8,
        ..via_server::ServerConfig::default()
    };
    let mut candidates = vec![RelayOption::Direct];
    candidates.extend((0..n_relays.min(8)).map(|r| RelayOption::Bounce(RelayId(r as u32))));
    if n_relays >= 2 {
        candidates.push(RelayOption::Transit(RelayId(0), RelayId(1)));
    }
    (
        std::sync::Arc::new(via_server::Controller::new(cfg, prior, backbone)),
        n_keys,
        candidates,
    )
}

/// Closed-loop load against the live controller (via-server).
///
/// Phase 1 (in-process, the acceptance surface): a single driver issuing
/// selects with one report per four selects, spanning a window rollover, so
/// the measured rate includes incremental refits and one full predictor
/// publish. Throughput is wall-clock; percentiles come from the
/// controller's own select-latency histogram.
///
/// Phase 2 (socket): the same call pattern as select round trips over one
/// loopback connection through the framed-TCP plane — measured separately
/// because it prices serialization and scheduling, not selection.
fn bench_server(quick: bool) -> ServerRecord {
    use rand::Rng;

    // -------- in-process phase --------
    let (controller, n_keys, candidates) = server_under_test();
    let mut rng = StdRng::seed_from_u64(11);
    let window_secs = controller.config().window.secs();
    let warm = 10_000u64;
    let measured: u64 = if quick { 200_000 } else { 1_000_000 };
    let span = 2 * window_secs; // measured phase crosses one rollover
    let mut drive = |controller: &via_server::Controller, call_id: u64, t: SimTime| {
        let src = rng.random_range(0..n_keys);
        let dst = (src + rng.random_range(1..n_keys.max(2))) % n_keys;
        let sel = controller.select(call_id, t, src, dst, &candidates);
        if call_id.is_multiple_of(4) {
            let m = PathMetrics::new(
                40.0 + rng.random::<f64>() * 80.0,
                rng.random::<f64>() * 2.0,
                1.0 + rng.random::<f64>() * 5.0,
            );
            controller.report(t, src, dst, sel.option, &m);
        }
        black_box(sel);
    };
    for i in 0..warm {
        drive(&controller, i, SimTime(i % window_secs));
    }
    let start = Instant::now();
    for i in 0..measured {
        drive(&controller, warm + i, SimTime(span * i / measured));
    }
    let wall = start.elapsed().as_secs_f64();
    let in_process_selections_per_sec = measured as f64 / wall;
    let hist = controller.latency_histogram();
    let in_process_p50_us = hist.quantile_bracket(0.5).map_or(f64::NAN, |(_, hi)| hi);
    let in_process_p99_us = hist.quantile_bracket(0.99).map_or(f64::NAN, |(_, hi)| hi);
    let refit_epochs = controller.refit_epoch();

    // -------- socket phase --------
    let (controller, n_keys, _) = server_under_test();
    let handle = via_server::serve(controller).expect("bind loopback");
    let mut client = via_server::Client::connect(handle.addr(), std::time::Duration::from_secs(10))
        .expect("connect");
    let round_trips: u64 = if quick { 5_000 } else { 20_000 };
    let mut rtts_us = Vec::with_capacity(usize::try_from(round_trips).expect("fits usize"));
    let start = Instant::now();
    for i in 0..round_trips {
        let src = rng.random_range(0..n_keys);
        let dst = (src + 1) % n_keys;
        let t0 = Instant::now();
        let sel = client
            .select(i, SimTime(i % window_secs), src, dst, &candidates)
            .expect("socket select");
        rtts_us.push(t0.elapsed().as_secs_f64() * 1e6);
        black_box(sel);
    }
    let socket_wall = start.elapsed().as_secs_f64();
    client.shutdown().expect("clean shutdown");
    handle.wait();
    rtts_us.sort_by(f64::total_cmp);
    let p99_idx = ((rtts_us.len() as f64) * 0.99) as usize;
    let socket_p99_us = rtts_us[p99_idx.min(rtts_us.len() - 1)];

    let record = ServerRecord {
        selections: measured,
        in_process_selections_per_sec,
        in_process_p50_us,
        in_process_p99_us,
        refit_epochs,
        socket_round_trips: round_trips,
        socket_round_trips_per_sec: round_trips as f64 / socket_wall,
        socket_p99_us,
    };
    println!(
        "replay_engine/server/in-process    {:>10.0} selections/s  p50<={:.1}us p99<={:.1}us ({} rollovers)",
        record.in_process_selections_per_sec,
        record.in_process_p50_us,
        record.in_process_p99_us,
        record.refit_epochs,
    );
    println!(
        "replay_engine/server/socket        {:>10.0} round-trips/s  p99={:.0}us",
        record.socket_round_trips_per_sec, record.socket_p99_us,
    );
    record
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut criterion = Criterion::default();
    let mut runs = Vec::new();
    let mut sweeps = Vec::new();

    // Streaming section first: its VmHWM readings are only meaningful
    // before anything else has inflated the process high-water mark.
    let streams = bench_streaming(quick);

    // Throughput + worker sweep, cold path and warmed cache. Quick mode (CI
    // smoke) stays at tiny scale; the full suite adds small and paper scale,
    // the acceptance target. On a one-core host the multi-worker sweeps at
    // the larger scales are skipped outright — they cannot measure scaling,
    // only coordination overhead, and at paper scale that waste is minutes.
    // Tiny keeps its multi-worker runs regardless: they double as the
    // cross-worker determinism check.
    let multi_ok = usable_parallelism() > 1;
    let (world, trace) = env(&WorldConfig::tiny(), TraceConfig::tiny(), 7);
    sweeps.push(sweep(
        &world,
        &trace,
        "tiny",
        false,
        &[1, 2, 8],
        multi_ok,
        &mut runs,
    ));
    sweeps.push(sweep(
        &world,
        &trace,
        "tiny",
        true,
        &[1, 2, 8],
        multi_ok,
        &mut runs,
    ));
    let sample_option = bench_sample_option(&mut criterion, &world);
    // Tiny-scale overhead is reported for continuity but is dominated by
    // fixed per-call work (a tiny call is ~1.5 µs of mostly bookkeeping, so
    // the one extra CRN baseline realization behind the MOS-delta histogram
    // reads as a large fraction). The <5% budget is gated on the primary
    // record below, measured at the largest scale the run includes — where
    // per-call cost is real work and the ratio means something.
    let metrics_overhead_tiny = bench_metrics_overhead(&world, &trace, "tiny", 5);
    // Multipath cost section: quick mode measures at tiny scale (the CI
    // smoke runs this); the full suite re-measures at small scale where a
    // call's budget is dominated by real scoring/realization work.
    let multipath = if quick {
        bench_multipath(&world, &trace, "tiny", 5)
    } else {
        let (world, trace) = env(&WorldConfig::small(), TraceConfig::small(), 7);
        bench_multipath(&world, &trace, "small", 5)
    };
    if !quick {
        let (world, trace) = env(&WorldConfig::small(), TraceConfig::small(), 7);
        let counts: &[usize] = if multi_ok { &[1, 2, 8, 0] } else { &[1] };
        sweeps.push(sweep(
            &world, &trace, "small", false, counts, multi_ok, &mut runs,
        ));
        sweeps.push(sweep(
            &world, &trace, "small", true, counts, multi_ok, &mut runs,
        ));
        let (world, trace) = env(&WorldConfig::paper_scale(), TraceConfig::paper_scale(), 7);
        let counts: &[usize] = if multi_ok { &[1, 8] } else { &[1] };
        sweeps.push(sweep(
            &world, &trace, "paper", false, counts, multi_ok, &mut runs,
        ));
        sweeps.push(sweep(
            &world, &trace, "paper", true, counts, multi_ok, &mut runs,
        ));
    }
    // Primary overhead record, both modes: the paper-scale world (the
    // acceptance scale's per-call cost profile — same candidate density and
    // segment mix) driven by a shortened trace so each repetition is a few
    // hundred milliseconds. Gating at tiny/small would ask the MOS-delta
    // baseline — segment-mean math that costs the same per call at every
    // scale — to hide inside a per-call budget that is mostly fixed
    // bookkeeping there; and gating on full-length paper runs would replace
    // statistics with a handful of ten-second samples at the mercy of host
    // drift. Overhead is a per-call ratio, so trace length only sets how
    // many repetitions fit: short runs × many alternating ratios beats long
    // runs × few.
    let short = TraceConfig {
        days: 2,
        ..TraceConfig::paper_scale()
    };
    let (world, trace) = env(&WorldConfig::paper_scale(), short, 7);
    let metrics_overhead = bench_metrics_overhead(&world, &trace, "paper-world/short-trace", 20);

    let predictor_fit = bench_predictor_fit(&mut criterion);
    let server = bench_server(quick);

    // Live-controller acceptance gates: the select plane must sustain
    // ≥100k selections/s with p99 ≤100 µs in-process (socket round trips
    // are reported but not gated — they price the RPC layer, not
    // selection). Quick mode keeps a relaxed floor so shared CI runners
    // still catch order-of-magnitude regressions without flaking on noise.
    let (min_sps, max_p99) = if quick {
        (50_000.0, 400.0)
    } else {
        (100_000.0, 100.0)
    };
    assert!(
        server.in_process_selections_per_sec >= min_sps,
        "live controller sustained only {:.0} selections/s (target {min_sps:.0})",
        server.in_process_selections_per_sec,
    );
    assert!(
        server.in_process_p99_us <= max_p99,
        "live controller p99 select latency {:.0} us exceeds {max_p99:.0} us",
        server.in_process_p99_us,
    );

    for s in &sweeps {
        assert!(
            s.results_identical,
            "worker sweep at {} scale produced diverging results",
            s.scale
        );
    }

    // CI smoke regression gate: multi-worker replay must not be slower than
    // sequential beyond noise. On a multi-core host the sharded engine is
    // expected to win outright; when the process is pinned to one core
    // (usable_parallelism == 1) genuine speedup is impossible, so the gate
    // only bounds the coordination overhead. Tiny-scale walls are a few ms,
    // so tolerances are generous against timer jitter.
    let tolerance = if usable_parallelism() > 1 { 1.30 } else { 2.00 };
    for s in sweeps.iter().filter(|s| s.scale == "tiny") {
        let sequential = s.wall_ms[0];
        let best_multi = s.wall_ms[1..].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            best_multi <= sequential * tolerance,
            "tiny-scale {} sweep: best multi-worker wall {best_multi:.1} ms \
             vs sequential {sequential:.1} ms exceeds {tolerance}x tolerance \
             (usable_parallelism={})",
            if s.warm { "warm" } else { "cold" },
            usable_parallelism(),
        );
    }

    // Instrumentation-overhead regression gate: the metric sink must stay
    // near-free on the replay hot path. Gated on the primary record — the
    // largest scale this run measured (small under --quick, paper in the
    // full suite) — where per-call cost is dominated by real work rather
    // than fixed overhead. The bench binary exits non-zero on breach, which
    // is exactly what the CI smoke step runs.
    assert!(
        metrics_overhead.overhead_frac < 0.05,
        "metrics overhead at {} scale is {:.1}% (>= 5% budget): \
         {:.1} ms off vs {:.1} ms on",
        metrics_overhead.scale,
        100.0 * metrics_overhead.overhead_frac,
        metrics_overhead.wall_ms_off,
        metrics_overhead.wall_ms_on,
    );

    // Multipath cost gate: a 2-path duplicate call does two realizations
    // plus one receiver-side merge, so its per-call cost must stay within
    // 2.5x singlepath — past that the merge model is doing per-call work
    // that belongs in the realization layer.
    assert!(
        multipath.cost_ratio <= 2.5,
        "multipath replay costs {:.2}x singlepath per call at {} scale \
         (gate 2.5x): {:.1} ms vs {:.1} ms",
        multipath.cost_ratio,
        multipath.scale,
        multipath.wall_ms_multipath,
        multipath.wall_ms_singlepath,
    );

    let report = Report {
        bench: "replay_engine".to_string(),
        quick,
        host_cores: host_cores(),
        usable_parallelism: usable_parallelism(),
        runs,
        sweeps,
        streams,
        predictor_fit,
        sample_option,
        metrics_overhead,
        metrics_overhead_tiny,
        multipath,
        server,
    };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_replay.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json + "\n").expect("write bench report");
    println!("wrote {}", path.display());
}
