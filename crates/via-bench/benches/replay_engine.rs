//! Replay-engine benchmark suite: replay throughput at small and paper
//! scale, predictor-fit latency, and the sharded-vs-sequential worker sweep.
//! Emits `BENCH_replay.json` at the workspace root to start the perf
//! trajectory tracked by the ROADMAP.
//!
//! Uses a custom `main` (`harness = false` without the criterion macros):
//! the compat criterion entry point does not parse CLI arguments, and this
//! suite needs `--quick` (CI smoke: tiny scale, no paper-scale sweep) plus
//! its own JSON emission alongside the criterion console lines.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::Criterion;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use via_core::history::CallHistory;
use via_core::predictor::{GeoPrior, Predictor, PredictorConfig};
use via_core::replay::{ReplayConfig, ReplaySim};
use via_core::strategy::StrategyKind;
use via_core::KeyPair;
use via_model::ids::RelayId;
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::{SimTime, WindowLen};
use via_netsim::{World, WorldConfig};
use via_trace::{Trace, TraceConfig, TraceGenerator};

/// One timed replay run and its engine counters.
#[derive(Debug, Serialize)]
struct RunRecord {
    scale: String,
    strategy: String,
    workers_requested: usize,
    workers_resolved: usize,
    warm: bool,
    warmed_segments: u64,
    calls: usize,
    wall_ms: f64,
    calls_per_sec: f64,
    predictor_fits: u64,
    predictor_fit_ms: f64,
    shard_utilization: f64,
    controller_contacts: u64,
}

/// Worker-sweep outcome at one scale: per-worker-count wall times plus the
/// determinism check (identical per-call results for every worker count).
#[derive(Debug, Serialize)]
struct Sweep {
    scale: String,
    warm: bool,
    workers: Vec<usize>,
    workers_resolved: Vec<usize>,
    wall_ms: Vec<f64>,
    speedup_vs_sequential: Vec<f64>,
    /// Speedup divided by the resolved worker count: 1.0 = perfectly linear
    /// scaling, the regression-gated figure of merit for the engine.
    scaling_efficiency: Vec<f64>,
    results_identical: bool,
}

/// `sample_option` hot-path microbenchmark: the per-call world-model cost
/// every strategy pays (segment lookups + noise draws, no allocation).
#[derive(Debug, Serialize)]
struct SampleRecord {
    options_sampled: usize,
    ns_per_sample: f64,
}

#[derive(Debug, Serialize)]
struct FitRecord {
    cells: usize,
    sequential_ms: f64,
    parallel_ms: f64,
}

/// Cost of the via-obs instrumentation layer: the same replay with the
/// metric sink off vs on. The on-path records every counter, histogram
/// observation, and per-window span the engine emits.
#[derive(Debug, Serialize)]
struct ObsRecord {
    scale: String,
    wall_ms_off: f64,
    wall_ms_on: f64,
    /// Relative slowdown of the instrumented run (0.05 = 5 % overhead).
    overhead_frac: f64,
    counters: usize,
    histograms: usize,
    spans: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    quick: bool,
    /// Online CPUs on the host (from `/proc/cpuinfo`): the hardware the
    /// scaling targets are judged against.
    host_cores: usize,
    /// Parallelism actually usable by this process (affinity / cgroup
    /// masks applied) — what `workers: 0` resolves against.
    usable_parallelism: usize,
    runs: Vec<RunRecord>,
    sweeps: Vec<Sweep>,
    predictor_fit: FitRecord,
    sample_option: SampleRecord,
    metrics_overhead: ObsRecord,
}

/// Online CPU count of the host. `available_parallelism()` alone respects
/// affinity and cgroup masks and so under-reports the machine (it returned 1
/// in pinned CI containers — the `host_cores` reporting bug this fixes);
/// counting `processor` entries in `/proc/cpuinfo` sees the real host, with
/// `available_parallelism()` as the floor and non-Linux fallback.
fn host_cores() -> usize {
    let online = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    online.max(usable_parallelism())
}

/// Parallelism usable by this process (affinity-respecting).
fn usable_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn env(world_cfg: &WorldConfig, trace_cfg: TraceConfig, seed: u64) -> (World, Trace) {
    let world = World::generate(world_cfg, seed);
    let trace = TraceGenerator::new(&world, trace_cfg, seed).generate();
    (world, trace)
}

/// Runs one replay, timing it and extracting the engine counters.
fn timed_run(
    world: &World,
    trace: &Trace,
    kind: StrategyKind,
    workers: usize,
    warm: bool,
    scale: &str,
) -> (RunRecord, via_core::Outcome) {
    let cfg = ReplayConfig {
        workers,
        warm,
        ..ReplayConfig::default()
    };
    let start = Instant::now();
    let outcome = ReplaySim::new(world, trace, cfg).run(kind);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let record = RunRecord {
        scale: scale.to_string(),
        strategy: kind.name().to_string(),
        workers_requested: workers,
        workers_resolved: outcome.stats.workers,
        warm,
        warmed_segments: outcome.stats.warmed_segments,
        calls: outcome.calls.len(),
        wall_ms,
        calls_per_sec: outcome.calls.len() as f64 / (wall_ms / 1e3),
        predictor_fits: outcome.stats.predictor_fits,
        predictor_fit_ms: outcome.stats.predictor_fit_ms,
        shard_utilization: outcome.stats.shard_utilization(),
        controller_contacts: outcome.controller_contacts,
    };
    println!(
        "replay_engine/{scale}/{}{}/workers={workers:<2} {:>10.1} ms  ({:.0} calls/s)  [{}]",
        kind.name(),
        if warm { "+warm" } else { "" },
        record.wall_ms,
        record.calls_per_sec,
        outcome.stats.summary()
    );
    (record, outcome)
}

/// Same per-call results regardless of worker count (the byte-level JSON
/// check lives in via-core's tests; this structural check avoids holding
/// multi-hundred-MB JSON strings at paper scale).
fn same_results(a: &via_core::Outcome, b: &via_core::Outcome) -> bool {
    a.calls == b.calls
        && a.controller_contacts == b.controller_contacts
        && a.race_probes == b.race_probes
}

/// Worker sweep at one scale: sequential, then sharded counts; records
/// speedups and cross-checks determinism.
fn sweep(
    world: &World,
    trace: &Trace,
    scale: &str,
    warm: bool,
    worker_counts: &[usize],
    runs: &mut Vec<RunRecord>,
) -> Sweep {
    let mut wall_ms = Vec::new();
    let mut resolved = Vec::new();
    let mut baseline: Option<via_core::Outcome> = None;
    let mut identical = true;
    for &w in worker_counts {
        let (record, outcome) = timed_run(world, trace, StrategyKind::Via, w, warm, scale);
        wall_ms.push(record.wall_ms);
        resolved.push(record.workers_resolved);
        runs.push(record);
        match &baseline {
            None => baseline = Some(outcome),
            Some(b) => identical &= same_results(b, &outcome),
        }
    }
    let sequential = wall_ms[0];
    let speedups: Vec<f64> = wall_ms.iter().map(|&t| sequential / t).collect();
    Sweep {
        scale: scale.to_string(),
        warm,
        workers: worker_counts.to_vec(),
        workers_resolved: resolved.clone(),
        wall_ms,
        scaling_efficiency: speedups
            .iter()
            .zip(&resolved)
            .map(|(&s, &w)| s / w.max(1) as f64)
            .collect(),
        speedup_vs_sequential: speedups,
        results_identical: identical,
    }
}

/// Times the zero-allocation `sample_option` hot path: candidate options of
/// a trace-like pair set, segments prewarmed, CRN-style per-sample RNG.
fn bench_sample_option(c: &mut Criterion, world: &World) -> SampleRecord {
    let t = via_model::time::SimTime::from_days(3);
    // A representative option set: every candidate of a band of AS pairs.
    let n_ases = world.ases.len();
    let mut work: Vec<(via_model::ids::AsId, via_model::ids::AsId, RelayOption)> = Vec::new();
    for i in 0..n_ases.min(12) {
        let src = world.ases[i].id;
        let dst = world.ases[(i + n_ases / 2) % n_ases].id;
        for opt in world.candidate_options(src, dst) {
            work.push((src, dst, opt));
        }
    }
    let mut rng = StdRng::seed_from_u64(42);
    // Warm every touched segment first so the measurement isolates the
    // steady-state read path, not first-touch latent generation.
    for &(src, dst, opt) in &work {
        black_box(world.perf().sample_option(src, dst, opt, t, &mut rng));
    }

    let mut g = c.benchmark_group("replay_engine");
    g.bench_function("sample_option", |b| {
        b.iter(|| {
            for &(src, dst, opt) in &work {
                black_box(world.perf().sample_option(src, dst, opt, t, &mut rng));
            }
        })
    });
    g.finish();

    let reps = 200usize;
    let start = Instant::now();
    for _ in 0..reps {
        for &(src, dst, opt) in &work {
            black_box(world.perf().sample_option(src, dst, opt, t, &mut rng));
        }
    }
    let total = start.elapsed().as_secs_f64();
    let samples = reps * work.len();
    let record = SampleRecord {
        options_sampled: work.len(),
        ns_per_sample: total * 1e9 / samples.max(1) as f64,
    };
    println!(
        "replay_engine/sample_option: {:.0} ns/sample over {} options",
        record.ns_per_sample, record.options_sampled
    );
    record
}

/// Predictor-fit latency on a synthetic dense window, sequential vs all
/// cores. Criterion times the steady state; the JSON records single-shot
/// wall times from the same closure.
fn bench_predictor_fit(c: &mut Criterion) -> FitRecord {
    // A dense window: 2 000 pairs × 4 options, 6 samples each.
    let mut history = CallHistory::new();
    let window = WindowLen::DAY.window_of(SimTime::ZERO);
    let mut metrics = PathMetrics {
        rtt_ms: 120.0,
        loss_pct: 0.4,
        jitter_ms: 4.0,
    };
    for pair_idx in 0..2_000u32 {
        let pair = KeyPair::new(pair_idx % 97, pair_idx / 97);
        for option in [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(pair_idx % 7)),
            RelayOption::Bounce(RelayId(pair_idx % 5 + 7)),
            RelayOption::Transit(RelayId(pair_idx % 3), RelayId(pair_idx % 4 + 3)),
        ] {
            for sample in 0..6 {
                metrics.rtt_ms = 80.0 + f64::from((pair_idx + sample) % 120);
                history.record(window, pair, option, &metrics);
            }
        }
    }
    let cells = history.window_len(window);
    let prior = || GeoPrior::new(Vec::new(), Vec::new());
    let backbone = || {
        Box::new(|_: RelayId, _: RelayId| PathMetrics {
            rtt_ms: 40.0,
            loss_pct: 0.05,
            jitter_ms: 1.0,
        })
    };
    let fit = |workers: usize| {
        let cfg = PredictorConfig {
            workers,
            ..PredictorConfig::default()
        };
        Predictor::fit(&history, window, prior(), backbone(), cfg)
    };

    let mut g = c.benchmark_group("predictor_fit");
    g.bench_function("sequential", |b| b.iter(|| black_box(fit(1))));
    g.bench_function("all_cores", |b| b.iter(|| black_box(fit(0))));
    g.finish();

    let t = Instant::now();
    black_box(fit(1));
    let sequential_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    black_box(fit(0));
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    FitRecord {
        cells,
        sequential_ms,
        parallel_ms,
    }
}

/// Measures the via-obs sink's cost on the replay hot path: identical VIA
/// replays with `metrics` off and on, best-of-`reps` walls to damp jitter.
/// Asserts the instrumented run still produced a full snapshot (the bench
/// doubles as a smoke test that the counters survive the worker merge).
fn bench_metrics_overhead(world: &World, trace: &Trace, scale: &str) -> ObsRecord {
    let run = |metrics: bool| {
        let cfg = ReplayConfig {
            metrics,
            ..ReplayConfig::default()
        };
        let start = Instant::now();
        let outcome = ReplaySim::new(world, trace, cfg).run(StrategyKind::Via);
        (start.elapsed().as_secs_f64() * 1e3, outcome)
    };
    let reps = 3;
    let mut wall_off = f64::INFINITY;
    let mut wall_on = f64::INFINITY;
    let mut snap: Option<via_obs::MetricsSnapshot> = None;
    for _ in 0..reps {
        let (w, outcome) = run(false);
        assert!(outcome.obs.is_none(), "metrics=false must not record");
        wall_off = wall_off.min(w);
        let (w, outcome) = run(true);
        wall_on = wall_on.min(w);
        snap = Some(outcome.obs.expect("metrics=true records a snapshot"));
    }
    let snap = snap.expect("at least one instrumented run");
    assert!(
        snap.counter("replay_calls_total") > 0,
        "instrumented replay recorded no calls"
    );
    let record = ObsRecord {
        scale: scale.to_string(),
        wall_ms_off: wall_off,
        wall_ms_on: wall_on,
        overhead_frac: wall_on / wall_off - 1.0,
        counters: snap.counters.len(),
        histograms: snap.histograms.len(),
        spans: snap.spans.len(),
    };
    println!(
        "replay_engine/{scale}/metrics_overhead: {:.1} ms off vs {:.1} ms on \
         ({:+.1}% — {} counters, {} histograms, {} spans)",
        record.wall_ms_off,
        record.wall_ms_on,
        100.0 * record.overhead_frac,
        record.counters,
        record.histograms,
        record.spans,
    );
    record
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut criterion = Criterion::default();
    let mut runs = Vec::new();
    let mut sweeps = Vec::new();

    // Throughput + worker sweep, cold path and warmed cache. Quick mode (CI
    // smoke) stays at tiny scale; the full suite adds small and paper scale,
    // the acceptance target.
    let (world, trace) = env(&WorldConfig::tiny(), TraceConfig::tiny(), 7);
    sweeps.push(sweep(&world, &trace, "tiny", false, &[1, 2, 8], &mut runs));
    sweeps.push(sweep(&world, &trace, "tiny", true, &[1, 2, 8], &mut runs));
    let sample_option = bench_sample_option(&mut criterion, &world);
    let metrics_overhead = bench_metrics_overhead(&world, &trace, "tiny");
    if !quick {
        let (world, trace) = env(&WorldConfig::small(), TraceConfig::small(), 7);
        sweeps.push(sweep(
            &world,
            &trace,
            "small",
            false,
            &[1, 2, 8, 0],
            &mut runs,
        ));
        sweeps.push(sweep(
            &world,
            &trace,
            "small",
            true,
            &[1, 2, 8, 0],
            &mut runs,
        ));
        let (world, trace) = env(&WorldConfig::paper_scale(), TraceConfig::paper_scale(), 7);
        sweeps.push(sweep(&world, &trace, "paper", false, &[1, 8], &mut runs));
        sweeps.push(sweep(&world, &trace, "paper", true, &[1, 8], &mut runs));
    }

    let predictor_fit = bench_predictor_fit(&mut criterion);

    for s in &sweeps {
        assert!(
            s.results_identical,
            "worker sweep at {} scale produced diverging results",
            s.scale
        );
    }

    // CI smoke regression gate: multi-worker replay must not be slower than
    // sequential beyond noise. On a multi-core host the sharded engine is
    // expected to win outright; when the process is pinned to one core
    // (usable_parallelism == 1) genuine speedup is impossible, so the gate
    // only bounds the coordination overhead. Tiny-scale walls are a few ms,
    // so tolerances are generous against timer jitter.
    let tolerance = if usable_parallelism() > 1 { 1.30 } else { 2.00 };
    for s in sweeps.iter().filter(|s| s.scale == "tiny") {
        let sequential = s.wall_ms[0];
        let best_multi = s.wall_ms[1..].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            best_multi <= sequential * tolerance,
            "tiny-scale {} sweep: best multi-worker wall {best_multi:.1} ms \
             vs sequential {sequential:.1} ms exceeds {tolerance}x tolerance \
             (usable_parallelism={})",
            if s.warm { "warm" } else { "cold" },
            usable_parallelism(),
        );
    }

    let report = Report {
        bench: "replay_engine".to_string(),
        quick,
        host_cores: host_cores(),
        usable_parallelism: usable_parallelism(),
        runs,
        sweeps,
        predictor_fit,
        sample_option,
        metrics_overhead,
    };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_replay.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json + "\n").expect("write bench report");
    println!("wrote {}", path.display());
}
