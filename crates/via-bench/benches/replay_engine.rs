//! Replay-engine benchmark suite: replay throughput at small and paper
//! scale, predictor-fit latency, and the sharded-vs-sequential worker sweep.
//! Emits `BENCH_replay.json` at the workspace root to start the perf
//! trajectory tracked by the ROADMAP.
//!
//! Uses a custom `main` (`harness = false` without the criterion macros):
//! the compat criterion entry point does not parse CLI arguments, and this
//! suite needs `--quick` (CI smoke: tiny scale, no paper-scale sweep) plus
//! its own JSON emission alongside the criterion console lines.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::Criterion;
use serde::Serialize;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;
use via_core::history::CallHistory;
use via_core::predictor::{GeoPrior, Predictor, PredictorConfig};
use via_core::replay::{ReplayConfig, ReplaySim};
use via_core::strategy::StrategyKind;
use via_core::KeyPair;
use via_model::ids::RelayId;
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::{SimTime, WindowLen};
use via_netsim::{World, WorldConfig};
use via_trace::{Trace, TraceConfig, TraceGenerator};

/// One timed replay run and its engine counters.
#[derive(Debug, Serialize)]
struct RunRecord {
    scale: String,
    strategy: String,
    workers_requested: usize,
    workers_resolved: usize,
    calls: usize,
    wall_ms: f64,
    calls_per_sec: f64,
    predictor_fits: u64,
    predictor_fit_ms: f64,
    shard_utilization: f64,
    controller_contacts: u64,
}

/// Worker-sweep outcome at one scale: per-worker-count wall times plus the
/// determinism check (identical per-call results for every worker count).
#[derive(Debug, Serialize)]
struct Sweep {
    scale: String,
    workers: Vec<usize>,
    wall_ms: Vec<f64>,
    speedup_vs_sequential: Vec<f64>,
    results_identical: bool,
}

#[derive(Debug, Serialize)]
struct FitRecord {
    cells: usize,
    sequential_ms: f64,
    parallel_ms: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    bench: String,
    quick: bool,
    host_cores: usize,
    runs: Vec<RunRecord>,
    sweeps: Vec<Sweep>,
    predictor_fit: FitRecord,
}

fn env(world_cfg: &WorldConfig, trace_cfg: TraceConfig, seed: u64) -> (World, Trace) {
    let world = World::generate(world_cfg, seed);
    let trace = TraceGenerator::new(&world, trace_cfg, seed).generate();
    (world, trace)
}

/// Runs one replay, timing it and extracting the engine counters.
fn timed_run(
    world: &World,
    trace: &Trace,
    kind: StrategyKind,
    workers: usize,
    scale: &str,
) -> (RunRecord, via_core::Outcome) {
    let cfg = ReplayConfig {
        workers,
        ..ReplayConfig::default()
    };
    let start = Instant::now();
    let outcome = ReplaySim::new(world, trace, cfg).run(kind);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let record = RunRecord {
        scale: scale.to_string(),
        strategy: kind.name().to_string(),
        workers_requested: workers,
        workers_resolved: outcome.stats.workers,
        calls: outcome.calls.len(),
        wall_ms,
        calls_per_sec: outcome.calls.len() as f64 / (wall_ms / 1e3),
        predictor_fits: outcome.stats.predictor_fits,
        predictor_fit_ms: outcome.stats.predictor_fit_ms,
        shard_utilization: outcome.stats.shard_utilization(),
        controller_contacts: outcome.controller_contacts,
    };
    println!(
        "replay_engine/{scale}/{}/workers={workers:<2} {:>10.1} ms  ({:.0} calls/s)  [{}]",
        kind.name(),
        record.wall_ms,
        record.calls_per_sec,
        outcome.stats.summary()
    );
    (record, outcome)
}

/// Same per-call results regardless of worker count (the byte-level JSON
/// check lives in via-core's tests; this structural check avoids holding
/// multi-hundred-MB JSON strings at paper scale).
fn same_results(a: &via_core::Outcome, b: &via_core::Outcome) -> bool {
    a.calls == b.calls
        && a.controller_contacts == b.controller_contacts
        && a.race_probes == b.race_probes
}

/// Worker sweep at one scale: sequential, then sharded counts; records
/// speedups and cross-checks determinism.
fn sweep(
    world: &World,
    trace: &Trace,
    scale: &str,
    worker_counts: &[usize],
    runs: &mut Vec<RunRecord>,
) -> Sweep {
    let mut wall_ms = Vec::new();
    let mut baseline: Option<via_core::Outcome> = None;
    let mut identical = true;
    for &w in worker_counts {
        let (record, outcome) = timed_run(world, trace, StrategyKind::Via, w, scale);
        wall_ms.push(record.wall_ms);
        runs.push(record);
        match &baseline {
            None => baseline = Some(outcome),
            Some(b) => identical &= same_results(b, &outcome),
        }
    }
    let sequential = wall_ms[0];
    Sweep {
        scale: scale.to_string(),
        workers: worker_counts.to_vec(),
        wall_ms: wall_ms.clone(),
        speedup_vs_sequential: wall_ms.iter().map(|&t| sequential / t).collect(),
        results_identical: identical,
    }
}

/// Predictor-fit latency on a synthetic dense window, sequential vs all
/// cores. Criterion times the steady state; the JSON records single-shot
/// wall times from the same closure.
fn bench_predictor_fit(c: &mut Criterion) -> FitRecord {
    // A dense window: 2 000 pairs × 4 options, 6 samples each.
    let mut history = CallHistory::new();
    let window = WindowLen::DAY.window_of(SimTime::ZERO);
    let mut metrics = PathMetrics {
        rtt_ms: 120.0,
        loss_pct: 0.4,
        jitter_ms: 4.0,
    };
    for pair_idx in 0..2_000u32 {
        let pair = KeyPair::new(pair_idx % 97, pair_idx / 97);
        for option in [
            RelayOption::Direct,
            RelayOption::Bounce(RelayId(pair_idx % 7)),
            RelayOption::Bounce(RelayId(pair_idx % 5 + 7)),
            RelayOption::Transit(RelayId(pair_idx % 3), RelayId(pair_idx % 4 + 3)),
        ] {
            for sample in 0..6 {
                metrics.rtt_ms = 80.0 + f64::from((pair_idx + sample) % 120);
                history.record(window, pair, option, &metrics);
            }
        }
    }
    let cells = history.window_len(window);
    let prior = || GeoPrior::new(Vec::new(), Vec::new());
    let backbone = || {
        Box::new(|_: RelayId, _: RelayId| PathMetrics {
            rtt_ms: 40.0,
            loss_pct: 0.05,
            jitter_ms: 1.0,
        })
    };
    let fit = |workers: usize| {
        let cfg = PredictorConfig {
            workers,
            ..PredictorConfig::default()
        };
        Predictor::fit(&history, window, prior(), backbone(), cfg)
    };

    let mut g = c.benchmark_group("predictor_fit");
    g.bench_function("sequential", |b| b.iter(|| black_box(fit(1))));
    g.bench_function("all_cores", |b| b.iter(|| black_box(fit(0))));
    g.finish();

    let t = Instant::now();
    black_box(fit(1));
    let sequential_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    black_box(fit(0));
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    FitRecord {
        cells,
        sequential_ms,
        parallel_ms,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut criterion = Criterion::default();
    let mut runs = Vec::new();
    let mut sweeps = Vec::new();

    // Throughput + worker sweep. Quick mode (CI smoke) stays at tiny scale;
    // the full suite adds small and paper scale, the acceptance target.
    let (world, trace) = env(&WorldConfig::tiny(), TraceConfig::tiny(), 7);
    sweeps.push(sweep(&world, &trace, "tiny", &[1, 2, 8], &mut runs));
    if !quick {
        let (world, trace) = env(&WorldConfig::small(), TraceConfig::small(), 7);
        sweeps.push(sweep(&world, &trace, "small", &[1, 2, 8, 0], &mut runs));
        let (world, trace) = env(&WorldConfig::paper_scale(), TraceConfig::paper_scale(), 7);
        sweeps.push(sweep(&world, &trace, "paper", &[1, 8], &mut runs));
    }

    let predictor_fit = bench_predictor_fit(&mut criterion);

    for s in &sweeps {
        assert!(
            s.results_identical,
            "worker sweep at {} scale produced diverging results",
            s.scale
        );
    }

    let report = Report {
        bench: "replay_engine".to_string(),
        quick,
        host_cores,
        runs,
        sweeps,
        predictor_fit,
    };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let path = root.join("BENCH_replay.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json + "\n").expect("write bench report");
    println!("wrote {}", path.display());
}
