//! Benchmarks of the §2 dataset-analysis pipeline (Table 1 and Figures 1–6)
//! over a synthetic trace — the cost of regenerating the paper's measurement
//! section.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use via_model::metrics::{Metric, Thresholds};
use via_netsim::{World, WorldConfig};
use via_trace::analysis;
use via_trace::{Trace, TraceConfig, TraceGenerator};

fn trace() -> Trace {
    let world = World::generate(&WorldConfig::tiny(), 7);
    TraceGenerator::new(&world, TraceConfig::tiny(), 7).generate()
}

fn bench_trace_generation(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::tiny(), 7);
    let mut g = c.benchmark_group("trace_generate");
    g.sample_size(10);
    g.bench_function("tiny_8k_calls", |b| {
        b.iter(|| TraceGenerator::new(black_box(&world), TraceConfig::tiny(), 7).generate())
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let tr = trace();
    let thresholds = Thresholds::default();
    let mut g = c.benchmark_group("analysis");

    g.bench_function("table1_summary", |b| {
        b.iter(|| analysis::dataset_summary(black_box(&tr)))
    });
    g.bench_function("fig01_pcr_curve", |b| {
        b.iter(|| analysis::pcr_vs_metric(black_box(&tr), Metric::Rtt, 800.0, 16, 30))
    });
    g.bench_function("fig02_metric_cdf", |b| {
        b.iter(|| analysis::metric_cdf(black_box(&tr), Metric::Loss))
    });
    g.bench_function("fig04_scope_pnr", |b| {
        b.iter(|| analysis::pnr_by_scope(black_box(&tr), &thresholds))
    });
    g.bench_function("fig05_concentration", |b| {
        b.iter(|| analysis::worst_pair_concentration(black_box(&tr), &thresholds))
    });
    g.bench_function("fig06_temporal_patterns", |b| {
        b.iter(|| analysis::temporal_patterns(black_box(&tr), &thresholds, 3))
    });
    g.finish();
}

criterion_group!(benches, bench_trace_generation, bench_analysis);
criterion_main!(benches);
