//! Per-figure regeneration benches: each bench runs the replay pipeline that
//! produces one of the paper's evaluation figures, at a miniature scale.
//! They track the end-to-end cost of the experiments and catch performance
//! regressions in the selection stack.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use via_core::replay::{ReplayConfig, ReplaySim, SpatialGranularity};
use via_core::strategy::StrategyKind;
use via_model::metrics::Metric;
use via_netsim::{World, WorldConfig};
use via_trace::{Trace, TraceConfig, TraceGenerator};

fn env() -> (World, Trace) {
    let world = World::generate(&WorldConfig::tiny(), 7);
    let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 7).generate();
    (world, trace)
}

fn run(world: &World, trace: &Trace, kind: StrategyKind, cfg: ReplayConfig) -> f64 {
    ReplaySim::new(world, trace, cfg)
        .run(kind)
        .pnr_any(&Default::default())
}

fn bench_strategies(c: &mut Criterion) {
    let (world, trace) = env();
    let mut g = c.benchmark_group("replay_fig12");
    g.sample_size(10);
    for kind in [
        StrategyKind::Default,
        StrategyKind::Oracle,
        StrategyKind::PredictionOnly,
        StrategyKind::ExplorationOnly,
        StrategyKind::Via,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| run(black_box(&world), &trace, kind, ReplayConfig::default()))
        });
    }
    g.finish();
}

fn bench_budget(c: &mut Criterion) {
    let (world, trace) = env();
    let mut g = c.benchmark_group("replay_fig16");
    g.sample_size(10);
    for budget in [0.1, 0.3] {
        g.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| {
                run(
                    black_box(&world),
                    &trace,
                    StrategyKind::ViaBudgeted { budget },
                    ReplayConfig::default(),
                )
            })
        });
    }
    g.finish();
}

fn bench_granularity(c: &mut Criterion) {
    let (world, trace) = env();
    let mut g = c.benchmark_group("replay_fig17");
    g.sample_size(10);
    for (label, granularity) in [
        ("country", SpatialGranularity::Country),
        ("as", SpatialGranularity::As),
        ("subas4", SpatialGranularity::SubAs { buckets: 4 }),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                run(
                    black_box(&world),
                    &trace,
                    StrategyKind::Via,
                    ReplayConfig {
                        granularity,
                        objective: Metric::Rtt,
                        ..ReplayConfig::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_budget, bench_granularity);
criterion_main!(benches);
