//! Benchmarks of the tomography solver (stage 2 of Algorithm 1): fitting a
//! window of relayed observations and stitching predictions. The fit runs
//! once per control period over the whole history; stitching runs per
//! (pair, option) query.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use via_core::history::{CallHistory, KeyPair};
use via_core::tomography::{Tomography, TomographyConfig};
use via_model::ids::RelayId;
use via_model::metrics::PathMetrics;
use via_model::options::RelayOption;
use via_model::time::{SimTime, Window, WindowLen};

fn window() -> Window {
    WindowLen::DAY.window_of(SimTime::ZERO)
}

/// Synthesizes a history window: `keys` spatial keys, `relays` relays,
/// random bounce observations with ground truth u[a,r] = 20 + 3a + 5r.
fn synth_history(keys: u32, relays: u32, observations: usize, seed: u64) -> CallHistory {
    let truth = |a: u32, r: u32| 20.0 + 3.0 * a as f64 + 5.0 * r as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = CallHistory::new();
    for _ in 0..observations {
        let a = rng.random_range(0..keys);
        let b = rng.random_range(0..keys);
        let r = rng.random_range(0..relays);
        let y = truth(a, r) + truth(b, r) + rng.random_range(-5.0..5.0);
        h.record(
            window(),
            KeyPair::new(a, b),
            RelayOption::Bounce(RelayId(r)),
            &PathMetrics::new(y, 0.3, 3.0),
        );
    }
    h
}

fn bench_fit(c: &mut Criterion) {
    let bb = |_: RelayId, _: RelayId| PathMetrics::new(50.0, 0.01, 0.4);
    let mut g = c.benchmark_group("tomography_fit");
    g.sample_size(20);
    for (keys, relays, obs) in [(50u32, 10u32, 2_000usize), (200, 30, 20_000)] {
        let h = synth_history(keys, relays, obs, 5);
        g.bench_function(format!("{keys}keys_{relays}relays_{obs}obs"), |b| {
            b.iter(|| Tomography::fit(black_box(&h), window(), &bb, &TomographyConfig::default()))
        });
    }
    g.finish();
}

fn bench_stitch(c: &mut Criterion) {
    let bb = |_: RelayId, _: RelayId| PathMetrics::new(50.0, 0.01, 0.4);
    let h = synth_history(100, 20, 10_000, 9);
    let tomo = Tomography::fit(&h, window(), &bb, &TomographyConfig::default());
    c.bench_function("tomography_stitch", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 100;
            tomo.stitch(
                black_box(i),
                black_box((i + 31) % 100),
                RelayOption::Bounce(RelayId(i % 20)),
                &bb,
            )
        })
    });
}

criterion_group!(benches, bench_fit, bench_stitch);
criterion_main!(benches);
