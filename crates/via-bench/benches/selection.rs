//! Microbenchmarks of the per-call selection path: top-k pruning, the
//! modified UCB1 bandit, the budget gate, and the streaming quantile
//! estimator. These bound the controller's per-call overhead (§7 discusses
//! controller scalability).

// Bench setup code: panicking on a malformed fixture is the right behavior,
// and criterion's closure style fights `semicolon_if_nothing_returned`.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use via_core::bandit::UcbBandit;
use via_core::budget::BudgetGate;
use via_core::topk::{top_k, ScoredOption};
use via_model::ids::RelayId;
use via_model::options::RelayOption;
use via_model::stats::P2Quantile;

fn scored_options(n: u32, seed: u64) -> Vec<ScoredOption> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mean = rng.random_range(50.0..400.0);
            let half = rng.random_range(5.0..60.0);
            ScoredOption {
                option: RelayOption::Bounce(RelayId(i)),
                mean,
                lower: mean - half,
                upper: mean + half,
            }
        })
        .collect()
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk");
    for n in [8u32, 17, 64] {
        let scored = scored_options(n, 7);
        g.bench_function(format!("closure_{n}_options"), |b| {
            b.iter(|| top_k(black_box(&scored)))
        });
    }
    g.finish();
}

fn bench_bandit(c: &mut Criterion) {
    let mut g = c.benchmark_group("bandit");
    let options: Vec<RelayOption> = (0..8).map(|i| RelayOption::Bounce(RelayId(i))).collect();

    g.bench_function("choose_8_arms", |b| {
        let mut bandit = UcbBandit::new(options.clone(), 200.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let o = bandit.choose().unwrap();
            bandit.update(o, rng.random_range(50.0..300.0));
        }
        b.iter(|| black_box(&bandit).choose())
    });

    g.bench_function("choose_update_cycle", |b| {
        b.iter_batched(
            || UcbBandit::with_priors(options.iter().map(|&o| (o, 150.0)), 200.0, 3),
            |mut bandit| {
                for _ in 0..64 {
                    let o = bandit.choose().unwrap();
                    bandit.update(o, 120.0);
                }
                bandit
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_budget(c: &mut Criterion) {
    c.bench_function("budget_gate_admit", |b| {
        let mut gate = BudgetGate::new(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            gate.admit(rng.random_range(0.0..100.0));
        }
        let mut x = 0.0;
        b.iter(|| {
            x += 1.0;
            gate.admit(black_box(x % 100.0))
        })
    });
}

fn bench_p2(c: &mut Criterion) {
    c.bench_function("p2_quantile_push", |b| {
        let mut q = P2Quantile::new(0.7);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            q.push(rng.random::<f64>());
        }
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.37) % 1.0;
            q.push(black_box(x));
        })
    });
}

criterion_group!(benches, bench_topk, bench_bandit, bench_budget, bench_p2);
criterion_main!(benches);
