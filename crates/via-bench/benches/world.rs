//! Benchmarks of the synthetic-world substrate: generation, path sampling
//! throughput (the inner loop of every replay), and candidate enumeration.

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use via_model::options::RelayOption;
use via_model::time::SimTime;
use via_netsim::{World, WorldConfig};

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_generate");
    g.sample_size(10);
    for (label, cfg) in [
        ("tiny", WorldConfig::tiny()),
        ("small", WorldConfig::small()),
        ("paper", WorldConfig::paper_scale()),
    ] {
        g.bench_function(label, |b| b.iter(|| World::generate(black_box(&cfg), 7)));
    }
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let world = World::generate(&WorldConfig::small(), 7);
    let n_ases = world.ases.len() as u32;
    let mut rng = StdRng::seed_from_u64(1);

    c.bench_function("sample_direct_path", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % n_ases;
            let src = via_model::AsId(i);
            let dst = via_model::AsId((i * 7 + 3) % n_ases);
            world.perf().sample_option(
                src,
                dst,
                RelayOption::Direct,
                SimTime::from_hours(u64::from(i % 480)),
                &mut rng,
            )
        })
    });

    c.bench_function("sample_transit_path", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % n_ases;
            let src = via_model::AsId(i);
            let dst = via_model::AsId((i * 7 + 3) % n_ases);
            world.perf().sample_option(
                src,
                dst,
                RelayOption::Transit(via_model::RelayId(i % 12), via_model::RelayId((i + 5) % 12)),
                SimTime::from_hours(u64::from(i % 480)),
                &mut rng,
            )
        })
    });

    c.bench_function("candidate_options", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % n_ases;
            world.candidate_options(
                via_model::AsId(i),
                via_model::AsId(black_box((i * 13 + 1) % n_ases)),
            )
        })
    });
}

criterion_group!(benches, bench_generation, bench_sampling);
criterion_main!(benches);
