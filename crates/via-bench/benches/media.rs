//! Benchmarks of the RTP-layer substrate: header codec, loss/delay
//! processes, and full packet-level call simulation (the §2.2 validation
//! workload, 70 K calls in the paper).

// Bench setup code: criterion closures fight `semicolon_if_nothing_returned`,
// and panicking on a malformed fixture is the right behavior.
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![allow(clippy::semicolon_if_nothing_returned)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use via_media::call_sim::{simulate_call, CallSimConfig};
use via_media::loss::GilbertElliott;
use via_media::packet::RtpPacket;
use via_model::metrics::PathMetrics;

fn bench_rtp_codec(c: &mut Criterion) {
    let pkt = RtpPacket {
        payload_type: 0,
        marker: false,
        seq: 1234,
        timestamp: 567_890,
        ssrc: 0xABCD_EF01,
        payload_len: 160,
    };
    let wire = pkt.encode();
    let mut g = c.benchmark_group("rtp");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode", |b| b.iter(|| black_box(&pkt).encode()));
    g.bench_function("decode", |b| b.iter(|| RtpPacket::decode(black_box(&wire))));
    g.finish();
}

fn bench_loss_model(c: &mut Criterion) {
    c.bench_function("gilbert_elliott_step", |b| {
        let mut seed_rng = StdRng::seed_from_u64(1);
        let mut ge = GilbertElliott::with_mean_loss(2.0, 6.0, &mut seed_rng);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| ge.next_lost(&mut rng))
    });
}

fn bench_call_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet_level_call");
    g.sample_size(20);
    for (label, metrics, secs) in [
        ("clean_60s", PathMetrics::new(80.0, 0.2, 3.0), 60.0),
        ("poor_60s", PathMetrics::new(450.0, 4.0, 25.0), 60.0),
        ("clean_300s", PathMetrics::new(80.0, 0.2, 3.0), 300.0),
    ] {
        // 50 packets/s: report throughput in simulated packets.
        g.throughput(Throughput::Elements((secs * 50.0) as u64));
        g.bench_function(label, |b| {
            b.iter(|| simulate_call(black_box(&metrics), secs, &CallSimConfig::default(), 3))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rtp_codec, bench_loss_model, bench_call_sim);
criterion_main!(benches);
