//! Criterion benchmark crate: all content lives in `benches/`.
