//! Shared vocabulary for the VIA reproduction.
//!
//! This crate defines the small, dependency-light types that every other crate
//! in the workspace speaks:
//!
//! * [`ids`] — newtype identifiers for countries, autonomous systems, clients,
//!   relays, and calls, plus the [`ids::AsPair`] key used for source–destination
//!   aggregation throughout the paper.
//! * [`metrics`] — [`metrics::PathMetrics`] (RTT, loss rate, jitter), the
//!   [`metrics::Metric`] axis enum, and the poor-performance
//!   [`metrics::Thresholds`] from §2.2 of the paper (RTT ≥ 320 ms, loss ≥ 1.2 %,
//!   jitter ≥ 12 ms).
//! * [`time`] — deterministic simulated time ([`time::SimTime`]) and the
//!   fixed-width aggregation [`time::Window`]s (24 h by default) that both the
//!   oracle and VIA's predictor operate on.
//! * [`options`] — the relaying alternatives of §3.1: the default path, a
//!   single bouncing relay, or a transit relay pair.
//! * [`stats`] — the statistics toolbox used by the analysis pipeline and the
//!   relay-selection algorithm: online mean/variance (Welford), percentiles,
//!   CDFs, Pearson correlation, equal-width binning, and the P² streaming
//!   quantile estimator that backs budget-aware relaying.
//! * [`seed`] — deterministic sub-seed derivation so that every component of
//!   the simulation draws from an independent, reproducible random stream.
//!
//! Everything in this crate is pure data and arithmetic: no I/O, no wall-clock
//! time, no global state. That keeps the full simulation deterministic given a
//! single top-level seed, in the spirit of event-driven network simulators.

#![warn(missing_docs)]

pub mod ids;
pub mod metrics;
pub mod options;
pub mod seed;
pub mod stats;
pub mod time;

pub use ids::{AsId, AsPair, CallId, ClientId, CountryId, RelayId};
pub use metrics::{Metric, PathMetrics, Thresholds};
pub use options::RelayOption;
pub use time::{SimTime, Window, WindowLen};
