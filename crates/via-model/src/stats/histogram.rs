//! Log-bucketed streaming histogram with bounded memory.
//!
//! A paper-scale trace holds millions of per-call metric values; extracting
//! percentiles by sorting needs O(n) memory per metric per slice. This
//! histogram records values into logarithmically spaced buckets at a
//! configurable relative precision (HdrHistogram-style, without the
//! dependency): O(buckets) memory, O(1) record, mergeable, and quantiles
//! accurate to the bucket width.

use serde::{Deserialize, Serialize};

/// A histogram over positive values with buckets spaced by a constant
/// relative growth factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Smallest distinguishable value; everything below lands in bucket 0.
    min_value: f64,
    /// log(growth) — buckets span `min_value·growth^i`.
    log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    /// Exact running extremes (cheap, and useful for reporting).
    min_seen: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Creates a histogram covering `[min_value, max_value]` with the given
    /// relative precision (e.g. `0.01` = buckets 1 % apart). Values outside
    /// the range clamp to the edge buckets.
    ///
    /// # Panics
    /// Panics unless `0 < min_value < max_value` and `0 < precision < 1`.
    pub fn new(min_value: f64, max_value: f64, precision: f64) -> LogHistogram {
        assert!(min_value > 0.0 && max_value > min_value, "bad value range");
        assert!(precision > 0.0 && precision < 1.0, "bad precision");
        let log_growth = (1.0 + precision).ln();
        let buckets = ((max_value / min_value).ln() / log_growth).ceil() as usize + 2;
        LogHistogram {
            min_value,
            log_growth,
            counts: vec![0; buckets],
            total: 0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A default configuration suitable for call metrics: 0.01–10 000 with
    /// 1 % buckets (~1 400 buckets).
    pub fn for_metrics() -> LogHistogram {
        LogHistogram::new(0.01, 10_000.0, 0.01)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.min_value {
            return 0;
        }
        let idx = ((v / self.min_value).ln() / self.log_growth) as usize + 1;
        idx.min(self.counts.len() - 1)
    }

    /// Representative (geometric-mid) value of a bucket.
    fn value_of(&self, bucket: usize) -> f64 {
        if bucket == 0 {
            return self.min_value;
        }
        self.min_value * ((bucket as f64 - 0.5) * self.log_growth).exp()
    }

    /// Records one value. Non-finite and negative values are ignored; zeros
    /// land in the lowest bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let b = self.bucket_of(v);
        self.counts[b] += 1;
        self.total += 1;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value (exact).
    pub fn min(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min_seen)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max_seen)
    }

    /// Quantile `q ∈ [0, 1]`, accurate to the bucket precision. `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample (1-based), matching nearest-rank
        // semantics.
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the exact extremes so tails never exceed reality.
                return Some(self.value_of(b).clamp(self.min_seen, self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// Fraction of recorded values ≥ `x` (approximate at bucket precision) —
    /// the "beyond threshold" direction used for PNR.
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = self.bucket_of(x);
        let above: u64 = self.counts[b..].iter().sum();
        above as f64 / self.total as f64
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "config mismatch");
        assert_eq!(self.min_value, other.min_value, "config mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::for_metrics();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.fraction_at_or_above(1.0), 0.0);
    }

    #[test]
    fn quantiles_match_exact_within_precision() {
        let mut h = LogHistogram::new(0.1, 10_000.0, 0.01);
        let values: Vec<f64> = (1..=10_000).map(|i| i as f64 / 10.0).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = crate::stats::percentile(&values, q * 100.0).unwrap();
            let approx = h.quantile(q).unwrap();
            assert!(
                (approx - exact).abs() / exact < 0.02,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LogHistogram::for_metrics();
        for v in [3.7, 120.0, 9_999.0, 0.5] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(0.5));
        assert_eq!(h.max(), Some(9_999.0));
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn threshold_fraction_matches_exact() {
        let mut h = LogHistogram::for_metrics();
        for i in 0..1_000 {
            h.record(i as f64);
        }
        let frac = h.fraction_at_or_above(320.0);
        assert!((frac - 0.68).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::for_metrics();
        let mut b = LogHistogram::for_metrics();
        let mut all = LogHistogram::for_metrics();
        for i in 0..500 {
            let v = 1.0 + i as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), all.len());
        for q in [0.25, 0.5, 0.75] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn ignores_garbage() {
        let mut h = LogHistogram::for_metrics();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-1.0);
        assert!(h.is_empty());
        h.record(0.0); // clamps into bucket 0
        assert_eq!(h.len(), 1);
    }

    #[test]
    #[should_panic(expected = "bad value range")]
    fn rejects_bad_range() {
        LogHistogram::new(10.0, 1.0, 0.01);
    }

    proptest! {
        #[test]
        fn quantile_is_monotone(values in prop::collection::vec(0.01f64..9_000.0, 1..300),
                                q1 in 0f64..1.0, q2 in 0f64..1.0) {
            let mut h = LogHistogram::for_metrics();
            for &v in &values {
                h.record(v);
            }
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap() + 1e-9);
        }

        #[test]
        fn quantile_within_observed_range(values in prop::collection::vec(0.01f64..9_000.0, 1..300), q in 0f64..1.0) {
            let mut h = LogHistogram::for_metrics();
            for &v in &values {
                h.record(v);
            }
            let x = h.quantile(q).unwrap();
            prop_assert!(x >= h.min().unwrap() - 1e-9 && x <= h.max().unwrap() + 1e-9);
        }
    }
}
