//! Pearson correlation coefficient.

/// Pearson product-moment correlation of paired observations.
///
/// Figure 1 of the paper reports correlations of 0.97 / 0.95 / 0.91 between
/// binned network metrics and the poor call rate; the analysis pipeline uses
/// this function on the bin series to reproduce those statistics.
///
/// Returns `None` if fewer than two pairs remain after dropping non-finite
/// entries, or if either variable has zero variance (correlation undefined).
pub fn pearson(pairs: &[(f64, f64)]) -> Option<f64> {
    let clean: Vec<(f64, f64)> = pairs
        .iter()
        .copied()
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if clean.len() < 2 {
        return None;
    }
    let n = clean.len() as f64;
    let mean_x = clean.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_y = clean.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for &(x, y) in &clean {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= 0.0 || var_y <= 0.0 {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let pos: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        assert!((pearson(&pos).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -3.0 * i as f64)).collect();
        assert!((pearson(&neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_none() {
        assert_eq!(pearson(&[]), None);
        assert_eq!(pearson(&[(1.0, 2.0)]), None);
        // Zero variance in x.
        assert_eq!(pearson(&[(1.0, 2.0), (1.0, 3.0)]), None);
        // NaN filtered down to one pair.
        assert_eq!(pearson(&[(1.0, 2.0), (f64::NAN, 3.0)]), None);
    }

    #[test]
    fn known_value() {
        // Anscombe-like small set with known r ≈ 0.816... use a simple one:
        // x = 1..5, y = (2, 1, 4, 3, 5): r = 0.8.
        let pairs = [(1.0, 2.0), (2.0, 1.0), (3.0, 4.0), (4.0, 3.0), (5.0, 5.0)];
        assert!((pearson(&pairs).unwrap() - 0.8).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn bounded_by_one(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)) {
            if let Some(r) = pearson(&pairs) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            }
        }

        #[test]
        fn symmetric_in_axes(pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..50)) {
            let swapped: Vec<(f64, f64)> = pairs.iter().map(|&(x, y)| (y, x)).collect();
            match (pearson(&pairs), pearson(&swapped)) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {}
                _ => prop_assert!(false, "symmetry broken"),
            }
        }
    }
}
