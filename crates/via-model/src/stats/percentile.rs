//! Percentile extraction from sample sets.

/// Returns the `p`-th percentile (0–100) of `samples` using linear
/// interpolation between closest ranks (the "linear" / type-7 method used by
/// NumPy and R by default).
///
/// Returns `None` on an empty slice. Non-finite samples must be filtered by
/// the caller; they would corrupt the sort order.
///
/// The input does not need to be sorted; an internal copy is sorted. For bulk
/// extraction of many percentiles use [`percentiles`], which sorts once.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(percentile_sorted(&sorted, p))
}

/// Returns several percentiles of `samples`, sorting only once.
pub fn percentiles(samples: &[f64], ps: &[f64]) -> Option<Vec<f64>> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(ps.iter().map(|&p| percentile_sorted(&sorted, p)).collect())
}

/// Percentile of an already ascending-sorted, non-empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median convenience wrapper.
pub fn median(samples: &[f64]) -> Option<f64> {
    percentile(samples, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentiles(&[], &[50.0]), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 100.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 37.5), Some(7.0));
    }

    #[test]
    fn interpolates_linearly() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        // rank = 0.5*3 = 1.5 → halfway between 20 and 30.
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
        // rank = 0.25*3 = 0.75 → 10 + 0.75*10.
        assert_eq!(percentile(&xs, 25.0), Some(17.5));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let xs = [40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&xs, 50.0), Some(25.0));
    }

    #[test]
    fn median_matches_p50() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(median(&xs), Some(2.0));
    }

    #[test]
    fn bulk_matches_individual() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let ps = [10.0, 50.0, 90.0, 99.0];
        let bulk = percentiles(&xs, &ps).unwrap();
        for (i, &p) in ps.iter().enumerate() {
            assert_eq!(Some(bulk[i]), percentile(&xs, p));
        }
    }

    #[test]
    fn out_of_range_p_clamps() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -5.0), Some(1.0));
        assert_eq!(percentile(&xs, 150.0), Some(3.0));
    }

    proptest! {
        #[test]
        fn percentile_within_range(xs in prop::collection::vec(-1e6f64..1e6, 1..100), p in 0f64..100.0) {
            let v = percentile(&xs, p).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }

        #[test]
        fn percentile_monotone_in_p(xs in prop::collection::vec(-1e6f64..1e6, 1..100), p1 in 0f64..100.0, p2 in 0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&xs, lo).unwrap();
            let b = percentile(&xs, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
        }
    }
}
