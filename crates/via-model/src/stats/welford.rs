//! Online mean / variance / standard-error via Welford's algorithm.

use serde::{Deserialize, Serialize};

/// Numerically stable single-pass accumulator for mean, variance, and the
/// standard error of the mean (SEM).
///
/// VIA's predictor (§4.4) publishes, for every (source AS, destination AS,
/// relaying option), the sample mean and its SEM; the 95 % confidence bounds
/// `mean ± 1.96·SEM` drive the top-k pruning. This accumulator is the storage
/// unit behind those estimates: O(1) state per key, mergeable, and stable even
/// for millions of samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in. Non-finite values are ignored (they would
    /// poison every downstream confidence bound); callers that need strict
    /// validation should check before pushing.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance update). Allows per-shard aggregation followed by combination.
    // Float order is fixed: every caller combines shards in shard-index
    // order, so the operation sequence is deterministic per shard count.
    // via-audit: ordered-merge(Chan pairwise update, applied in shard-index order)
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True if no observations have been folded in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance; `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean, `s / √n`; `None` with fewer than two
    /// observations.
    pub fn sem(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Lower 95 % confidence bound of the mean (`mean − 1.96·SEM`).
    ///
    /// With a single sample the SEM is undefined; following the paper's
    /// "treat sparse data pessimistically" posture, a configurable fallback
    /// spread is applied by the caller instead (see `via-core::predictor`).
    pub fn ci95(&self) -> Option<(f64, f64)> {
        let mean = self.mean()?;
        let sem = self.sem()?;
        Some((mean - 1.96 * sem, mean + 1.96 * sem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_yield_none() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.sem(), None);
        assert_eq!(s.ci95(), None);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance = 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_sample_has_mean_but_no_sem() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.sem(), None);
    }

    #[test]
    fn non_finite_inputs_ignored() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(1.0));
    }

    #[test]
    fn ci95_brackets_mean() {
        let mut s = OnlineStats::new();
        for i in 0..100 {
            s.push(i as f64);
        }
        let (lo, hi) = s.ci95().unwrap();
        let mean = s.mean().unwrap();
        assert!(lo < mean && mean < hi);
        assert!((hi - mean - 1.96 * s.sem().unwrap()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(mut xs in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
            let split = split.min(xs.len());
            let (a, b) = xs.split_at(split);
            let mut sa = OnlineStats::new();
            let mut sb = OnlineStats::new();
            for &x in a { sa.push(x); }
            for &x in b { sb.push(x); }
            sa.merge(&sb);

            let mut seq = OnlineStats::new();
            for &x in xs.iter() { seq.push(x); }

            prop_assert_eq!(sa.count(), seq.count());
            let tol = 1e-6 * (1.0 + seq.mean().unwrap().abs());
            prop_assert!((sa.mean().unwrap() - seq.mean().unwrap()).abs() < tol);
            if xs.len() > 1 {
                let vtol = 1e-5 * (1.0 + seq.variance().unwrap().abs());
                prop_assert!((sa.variance().unwrap() - seq.variance().unwrap()).abs() < vtol);
            }
            // Keep xs non-empty for the lint about unused mut.
            xs.clear();
        }

        #[test]
        fn variance_nonnegative(xs in prop::collection::vec(-1e9f64..1e9, 2..100)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            prop_assert!(s.variance().unwrap() >= 0.0);
            prop_assert!(s.min().unwrap() <= s.mean().unwrap() + 1e-9);
            prop_assert!(s.max().unwrap() >= s.mean().unwrap() - 1e-9);
        }
    }
}
