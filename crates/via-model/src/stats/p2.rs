//! P² (Jain–Chlamtac) streaming quantile estimation.
//!
//! The budget-aware relaying gate (§4.6 of the paper) must know, for every
//! call, whether the predicted benefit of relaying lies in the top `B`
//! percentile of recently seen benefits — *without* storing the whole benefit
//! history. The P² algorithm maintains a five-marker parabolic approximation
//! of a single quantile in O(1) space and O(1) time per observation, which is
//! exactly the profile a per-call control loop needs.

use serde::{Deserialize, Serialize};

/// Streaming estimator of a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated values at the marker positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks), updated as samples arrive.
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Number of observations seen so far.
    count: u64,
    /// First five observations, buffered until initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` (e.g. `0.7` tracks the 70th
    /// percentile — the paper's B = 30 % budget keeps benefits at or above
    /// this marker). Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one observation in. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(f64::total_cmp);
                for (h, v) in self.heights.iter_mut().zip(&self.init) {
                    *h = *v;
                }
            }
            return;
        }

        // Locate the cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // Find first marker strictly above x; cell is the one before it.
            let mut k = 0;
            for i in 1..5 {
                if x < self.heights[i] {
                    k = i - 1;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.heights[i] = new_height;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. With fewer than five observations, falls
    /// back to the exact quantile of the buffered samples; returns `None`
    /// with no observations at all.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            let mut buf = self.init.clone();
            buf.sort_by(f64::total_cmp);
            return Some(super::percentile::percentile_sorted(&buf, self.q * 100.0));
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn empty_has_no_estimate() {
        assert_eq!(P2Quantile::new(0.5).estimate(), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_boundary_quantiles() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn small_sample_exact() {
        let mut p = P2Quantile::new(0.5);
        p.push(3.0);
        p.push(1.0);
        p.push(2.0);
        assert_eq!(p.estimate(), Some(2.0));
    }

    #[test]
    fn uniform_stream_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        for &q in &[0.1, 0.5, 0.7, 0.9] {
            let mut p = P2Quantile::new(q);
            for _ in 0..50_000 {
                p.push(rng.random::<f64>());
            }
            let est = p.estimate().unwrap();
            assert!(
                (est - q).abs() < 0.02,
                "q={q}: estimate {est} too far from truth"
            );
        }
    }

    #[test]
    fn lognormalish_stream_converges() {
        // Heavy-tailed input — the shape of "predicted benefit" streams.
        let mut rng = StdRng::seed_from_u64(11);
        let mut p = P2Quantile::new(0.7);
        let mut all = Vec::new();
        for _ in 0..30_000 {
            let u: f64 = rng.random();
            let x = (-(1.0 - u).ln()).powf(2.0); // squared exponential: heavy tail
            p.push(x);
            all.push(x);
        }
        let truth = crate::stats::percentile(&all, 70.0).unwrap();
        let est = p.estimate().unwrap();
        assert!(
            (est - truth).abs() / truth < 0.1,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn ignores_non_finite() {
        let mut p = P2Quantile::new(0.5);
        p.push(f64::NAN);
        assert_eq!(p.count(), 0);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            p.push(x);
        }
        assert_eq!(p.count(), 6);
        assert!(p.estimate().unwrap() > 1.0);
    }

    proptest! {
        /// An all-duplicates stream admits exactly one answer for any
        /// quantile: the duplicated value. The marker-adjustment machinery
        /// must not drift off it (parabolic interpolation between equal
        /// heights must stay at that height).
        #[test]
        fn all_duplicates_estimate_the_value_exactly(
            x in -1e6f64..1e6,
            n in 1usize..500,
            qi in 1usize..10,
        ) {
            let q = qi as f64 / 10.0;
            let mut p = P2Quantile::new(q);
            for _ in 0..n {
                p.push(x);
            }
            let est = p.estimate().unwrap();
            prop_assert!(
                (est - x).abs() <= 1e-9 * x.abs().max(1.0),
                "constant stream {x} × {n}: estimate {est}"
            );
        }

        /// Monotone ramps are the classic P² stress case: every observation
        /// lands in the extreme cell, so the interior markers trail their
        /// desired positions. Empirically the error stays under ~6% of the
        /// range on both directions; assert 12% as the regression bound.
        #[test]
        fn monotone_ramps_track_the_exact_percentile(
            n in 20usize..2_000,
            qi in 1usize..10,
            ascending in any::<bool>(),
        ) {
            let q = qi as f64 / 10.0;
            let mut xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            if !ascending {
                xs.reverse();
            }
            let mut p = P2Quantile::new(q);
            for &x in &xs {
                p.push(x);
            }
            let exact = q * (n - 1) as f64;
            let est = p.estimate().unwrap();
            prop_assert!(
                (est - exact).abs() <= 0.12 * n as f64 + 1.0,
                "{} ramp of {n}: estimate {est} vs exact {exact}",
                if ascending { "ascending" } else { "descending" }
            );
        }

        /// Two-point distributions: the estimate must stay bracketed by the
        /// two levels, and when the tracked quantile is well clear of the
        /// mix point it must sit on the correct level (within 10% of the
        /// gap — empirically it lands within 1%).
        #[test]
        fn two_point_distributions_stay_bracketed_and_pick_the_right_side(
            lo in -100f64..0.0,
            gap in 1f64..100.0,
            f_hi in 0.05f64..0.95,
            n in 30usize..800,
            qi in 1usize..10,
            seed in 0u64..1_000,
        ) {
            let q = qi as f64 / 10.0;
            let hi = lo + gap;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut p = P2Quantile::new(q);
            let mut n_hi = 0usize;
            for _ in 0..n {
                let x = if rng.random::<f64>() < f_hi {
                    n_hi += 1;
                    hi
                } else {
                    lo
                };
                p.push(x);
            }
            let est = p.estimate().unwrap();
            prop_assert!(
                est >= lo - 1e-9 && est <= hi + 1e-9,
                "estimate {est} outside [{lo}, {hi}]"
            );
            // Side checks against the *realized* mix, not the target
            // probability, so sampling noise cannot flip the expected side.
            let p_lo = 1.0 - n_hi as f64 / n as f64;
            if q < p_lo - 0.3 {
                prop_assert!(
                    (est - lo).abs() <= 0.1 * gap,
                    "q {q} well below mix point {p_lo:.2} but estimate {est} \
                     is not at lo {lo}"
                );
            } else if q > p_lo + 0.3 {
                prop_assert!(
                    (hi - est).abs() <= 0.1 * gap,
                    "q {q} well above mix point {p_lo:.2} but estimate {est} \
                     is not at hi {hi}"
                );
            }
        }

        #[test]
        fn estimate_within_observed_range(xs in prop::collection::vec(-1e3f64..1e3, 1..500), qi in 1usize..10) {
            let q = qi as f64 / 10.0;
            let mut p = P2Quantile::new(q);
            for &x in &xs { p.push(x); }
            let est = p.estimate().unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est >= min - 1e-9 && est <= max + 1e-9,
                "estimate {} outside [{}, {}]", est, min, max);
        }
    }
}
