//! Statistics utilities shared by the analysis pipeline and the selector.
//!
//! * [`welford`] — numerically stable online mean / variance / SEM
//!   ([`welford::OnlineStats`]), the backbone of the per-(pair, option,
//!   window) aggregates the predictor consumes.
//! * [`mod@percentile`] — percentile and quantile extraction from samples.
//! * [`cdf`] — empirical CDF construction for the paper's distribution plots.
//! * [`binning`] — fixed-width binning with a minimum-samples-per-bin rule
//!   (the paper requires ≥ 1000 samples per bin in Figure 1).
//! * [`mod@pearson`] — Pearson correlation coefficient, used to reproduce the
//!   0.97 / 0.95 / 0.91 PCR–metric correlations of Figure 1.
//! * [`p2`] — the P² (Jain–Chlamtac) streaming quantile estimator that the
//!   budget-aware gate (§4.6) uses to track the B-th percentile of predicted
//!   relaying benefit without storing history.
//! * [`histogram`] — a log-bucketed, mergeable histogram for memory-bounded
//!   percentile extraction over paper-scale (multi-million-call) traces.

pub mod binning;
pub mod cdf;
pub mod histogram;
pub mod p2;
pub mod pearson;
pub mod percentile;
pub mod welford;

pub use binning::{bin_means, Bin};
pub use cdf::Cdf;
pub use histogram::LogHistogram;
pub use p2::P2Quantile;
pub use pearson::pearson;
pub use percentile::{percentile, percentiles};
pub use welford::OnlineStats;
