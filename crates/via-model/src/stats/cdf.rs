//! Empirical cumulative distribution functions.
//!
//! Several of the paper's figures are CDFs (Figure 2: metric distributions;
//! Figure 6: persistence/prevalence; Figure 9: option stability; Figure 18:
//! sub-optimality). [`Cdf`] stores the sorted sample set and answers both
//! directions: `F(x)` (fraction ≤ x) and the quantile function `F⁻¹(q)`.

use serde::{Deserialize, Serialize};

use super::percentile::percentile_sorted;

/// An empirical CDF over a finite sample set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Non-finite samples are dropped. Returns
    /// `None` if no finite samples remain.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        Some(Self { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples ≤ `x` (right-continuous empirical CDF).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x via strict < on the
        // complement predicate.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples ≥ `x`; the "poor rate beyond threshold" direction
    /// used when checking that ≥ 15 % of calls cross each threshold (Fig. 2).
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        let below = self.sorted.partition_point(|&s| s < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// Quantile function: value at cumulative fraction `q` ∈ [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q.clamp(0.0, 1.0) * 100.0)
    }

    /// Evaluates the CDF at `n` evenly spaced sample values between min and
    /// max, returning `(x, F(x))` pairs — the polyline a plotting tool would
    /// draw. `n` must be ≥ 2.
    pub fn polyline(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "polyline needs at least two points");
        // The constructor rejects empty sample sets, so both bounds exist.
        let (Some(&min), Some(&max)) = (self.sorted.first(), self.sorted.last()) else {
            return Vec::new();
        };
        (0..n)
            .map(|i| {
                let x = min + (max - min) * i as f64 / (n - 1) as f64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_empty_and_non_finite() {
        assert!(Cdf::from_samples([]).is_none());
        assert!(Cdf::from_samples([f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn fraction_at_or_below_basics() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
        assert_eq!(cdf.fraction_at_or_below(4.0), 1.0);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn fraction_at_or_above_is_inclusive() {
        let cdf = Cdf::from_samples([1.0, 2.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.fraction_at_or_above(2.0), 0.75);
        assert_eq!(cdf.fraction_at_or_above(3.1), 0.0);
        assert_eq!(cdf.fraction_at_or_above(0.0), 1.0);
    }

    #[test]
    fn quantile_inverts() {
        let cdf = Cdf::from_samples((0..=100).map(|i| i as f64)).unwrap();
        assert_eq!(cdf.quantile(0.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 50.0);
        assert_eq!(cdf.quantile(1.0), 100.0);
    }

    #[test]
    fn polyline_spans_range_monotonically() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let line = cdf.polyline(11);
        assert_eq!(line.len(), 11);
        assert_eq!(line[0].0, 1.0);
        assert_eq!(line[10].0, 5.0);
        assert_eq!(line[10].1, 1.0);
        for w in line.windows(2) {
            assert!(w[0].1 <= w[1].1, "CDF must be monotone");
        }
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..100), a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let cdf = Cdf::from_samples(xs).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.fraction_at_or_below(lo) <= cdf.fraction_at_or_below(hi));
        }

        #[test]
        fn below_plus_strictly_above_is_one(xs in prop::collection::vec(-1e3f64..1e3, 1..50), x in -1e3f64..1e3) {
            let cdf = Cdf::from_samples(xs.clone()).unwrap();
            let below_or_eq = cdf.fraction_at_or_below(x);
            let strictly_above = xs.iter().filter(|&&s| s > x).count() as f64 / xs.len() as f64;
            prop_assert!((below_or_eq + strictly_above - 1.0).abs() < 1e-12);
        }
    }
}
