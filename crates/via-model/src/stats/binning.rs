//! Fixed-width binning of (x, y) observations.
//!
//! Figure 1 of the paper bins calls by a network metric and plots the poor
//! call rate per bin, keeping only bins with at least 1000 samples for
//! statistical significance. Figure 3 does the same with the 10th/50th/90th
//! percentiles of a second metric per bin. [`bin_means`] and
//! [`bin_percentiles`] implement both shapes.

use serde::{Deserialize, Serialize};

use super::percentile::percentiles;

/// One populated bin of an (x, y) binning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bin {
    /// Center of the bin on the x axis.
    pub x_center: f64,
    /// Number of observations that fell into this bin.
    pub count: usize,
    /// Mean of the y values in the bin.
    pub y_mean: f64,
}

/// Bins `(x, y)` points into `n_bins` equal-width bins over `[x_min, x_max)`
/// and returns the per-bin mean of `y`, dropping bins with fewer than
/// `min_samples` points.
///
/// Points with x outside the range, or with non-finite coordinates, are
/// ignored.
pub fn bin_means(
    points: &[(f64, f64)],
    x_min: f64,
    x_max: f64,
    n_bins: usize,
    min_samples: usize,
) -> Vec<Bin> {
    assert!(n_bins > 0, "need at least one bin");
    assert!(x_max > x_min, "x_max must exceed x_min");
    let width = (x_max - x_min) / n_bins as f64;
    let mut sums = vec![0.0f64; n_bins];
    let mut counts = vec![0usize; n_bins];
    for &(x, y) in points {
        if !x.is_finite() || !y.is_finite() || x < x_min || x >= x_max {
            continue;
        }
        let idx = (((x - x_min) / width) as usize).min(n_bins - 1);
        sums[idx] += y;
        counts[idx] += 1;
    }
    (0..n_bins)
        .filter(|&i| counts[i] >= min_samples.max(1))
        .map(|i| Bin {
            x_center: x_min + (i as f64 + 0.5) * width,
            count: counts[i],
            y_mean: sums[i] / counts[i] as f64,
        })
        .collect()
}

/// One populated bin carrying y-percentiles instead of the mean.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileBin {
    /// Center of the bin on the x axis.
    pub x_center: f64,
    /// Number of observations that fell into this bin.
    pub count: usize,
    /// The requested percentiles of y within the bin, in request order.
    pub y_percentiles: Vec<f64>,
}

/// Like [`bin_means`] but reports the given percentiles of `y` per bin
/// (Figure 3 uses the 10th, 50th and 90th).
pub fn bin_percentiles(
    points: &[(f64, f64)],
    x_min: f64,
    x_max: f64,
    n_bins: usize,
    min_samples: usize,
    ps: &[f64],
) -> Vec<PercentileBin> {
    assert!(n_bins > 0, "need at least one bin");
    assert!(x_max > x_min, "x_max must exceed x_min");
    let width = (x_max - x_min) / n_bins as f64;
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); n_bins];
    for &(x, y) in points {
        if !x.is_finite() || !y.is_finite() || x < x_min || x >= x_max {
            continue;
        }
        let idx = (((x - x_min) / width) as usize).min(n_bins - 1);
        buckets[idx].push(y);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, b)| b.len() >= min_samples.max(1))
        .filter_map(|(i, b)| {
            // The length filter above guarantees non-empty buckets, so
            // `percentiles` always yields `Some` here.
            let y_percentiles = percentiles(&b, ps)?;
            Some(PercentileBin {
                x_center: x_min + (i as f64 + 0.5) * width,
                count: b.len(),
                y_percentiles,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<(f64, f64)> {
        // x in [0,10): y = 2x, two points per unit interval.
        (0..20)
            .map(|i| {
                let x = i as f64 / 2.0;
                (x, 2.0 * x)
            })
            .collect()
    }

    #[test]
    fn means_per_bin() {
        let bins = bin_means(&grid(), 0.0, 10.0, 10, 1);
        assert_eq!(bins.len(), 10);
        // Bin 0 holds x = 0.0 and 0.5 → y mean = 0.5, center 0.5.
        assert_eq!(bins[0].x_center, 0.5);
        assert_eq!(bins[0].count, 2);
        assert!((bins[0].y_mean - 0.5).abs() < 1e-12);
        // Monotone data → monotone bin means.
        for w in bins.windows(2) {
            assert!(w[0].y_mean < w[1].y_mean);
        }
    }

    #[test]
    fn min_samples_filters_sparse_bins() {
        let pts = [(0.5, 1.0), (5.5, 1.0), (5.6, 2.0)];
        let bins = bin_means(&pts, 0.0, 10.0, 10, 2);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 2);
        assert!((bins[0].y_mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_and_non_finite_ignored() {
        let pts = [
            (-1.0, 5.0),
            (10.0, 5.0), // x_max is exclusive
            (f64::NAN, 5.0),
            (1.0, f64::INFINITY),
            (1.0, 3.0),
        ];
        let bins = bin_means(&pts, 0.0, 10.0, 10, 1);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].count, 1);
        assert_eq!(bins[0].y_mean, 3.0);
    }

    #[test]
    fn percentile_bins_report_spread() {
        let mut pts = Vec::new();
        for i in 0..100 {
            pts.push((0.5, i as f64)); // all in bin 0
        }
        let bins = bin_percentiles(&pts, 0.0, 1.0, 1, 1, &[10.0, 50.0, 90.0]);
        assert_eq!(bins.len(), 1);
        let p = &bins[0].y_percentiles;
        assert!((p[0] - 9.9).abs() < 0.2);
        assert!((p[1] - 49.5).abs() < 0.2);
        assert!((p[2] - 89.1).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "x_max must exceed x_min")]
    fn inverted_range_panics() {
        bin_means(&[], 1.0, 0.0, 4, 1);
    }
}
