//! Relaying options: the action space of the relay-selection problem.
//!
//! §3.1 of the paper defines three kinds of path a call can take:
//!
//! * the **default path** — whatever BGP-derived route the public Internet
//!   provides between caller and callee;
//! * a **bouncing relay** — the call is "bounced off" one relay node, so both
//!   legs (caller↔relay and relay↔callee) traverse the public Internet;
//! * a **transit relay** pair — the call enters the managed network at an
//!   ingress relay, crosses the private backbone, and exits at an egress
//!   relay, so only the first and last legs are public.

use crate::ids::RelayId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One relaying alternative for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RelayOption {
    /// The BGP-derived direct path between caller and callee.
    Direct,
    /// Bounce both directions of the call off a single relay.
    Bounce(RelayId),
    /// Enter at `ingress`, traverse the private backbone, exit at `egress`.
    ///
    /// The pair is stored as given (ingress near the caller); because call
    /// legs are symmetric in the performance model, `canonical` collapses
    /// `(a, b)` and `(b, a)`.
    Transit(RelayId, RelayId),
}

impl RelayOption {
    /// True for any relayed option (i.e., everything but `Direct`). Used by
    /// the budget accounting in §4.6, which limits the *fraction of calls
    /// relayed*.
    pub fn is_relayed(&self) -> bool {
        !matches!(self, RelayOption::Direct)
    }

    /// True for transit (two-relay) options.
    pub fn is_transit(&self) -> bool {
        matches!(self, RelayOption::Transit(_, _))
    }

    /// True for bouncing (single-relay) options.
    pub fn is_bounce(&self) -> bool {
        matches!(self, RelayOption::Bounce(_))
    }

    /// Canonical form: transit pairs are ordered so `(a, b)` and `(b, a)`
    /// compare equal, and a degenerate transit through a single relay
    /// collapses to a bounce. Call performance is direction-symmetric in
    /// both the paper's dataset (per-call averages) and our model.
    pub fn canonical(self) -> RelayOption {
        match self {
            RelayOption::Transit(a, b) if a == b => RelayOption::Bounce(a),
            RelayOption::Transit(a, b) if b < a => RelayOption::Transit(b, a),
            other => other,
        }
    }

    /// A stable 64-bit code for this option, unique within a world (relay ids
    /// are < 2²⁰). Used to derive per-(call, option) random streams so that
    /// different strategies evaluating the same call over the same option see
    /// the same realization (common random numbers).
    pub fn stable_code(&self) -> u64 {
        match self.canonical() {
            RelayOption::Direct => 0,
            RelayOption::Bounce(r) => 0x1_0000_0000 | u64::from(r.0),
            RelayOption::Transit(a, b) => 0x2_0000_0000 | (u64::from(a.0) << 20) | u64::from(b.0),
        }
    }

    /// The relays this option uses, in path order (empty for `Direct`).
    pub fn relays(&self) -> Vec<RelayId> {
        match self {
            RelayOption::Direct => vec![],
            RelayOption::Bounce(r) => vec![*r],
            RelayOption::Transit(a, b) => vec![*a, *b],
        }
    }
}

impl fmt::Display for RelayOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayOption::Direct => f.write_str("direct"),
            RelayOption::Bounce(r) => write!(f, "bounce({r})"),
            RelayOption::Transit(a, b) => write!(f, "transit({a},{b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relayed_classification() {
        assert!(!RelayOption::Direct.is_relayed());
        assert!(RelayOption::Bounce(RelayId(1)).is_relayed());
        assert!(RelayOption::Transit(RelayId(1), RelayId(2)).is_relayed());
        assert!(RelayOption::Transit(RelayId(1), RelayId(2)).is_transit());
        assert!(RelayOption::Bounce(RelayId(1)).is_bounce());
    }

    #[test]
    fn canonical_orders_transit() {
        let a = RelayOption::Transit(RelayId(5), RelayId(2)).canonical();
        let b = RelayOption::Transit(RelayId(2), RelayId(5)).canonical();
        assert_eq!(a, b);
        assert_eq!(a, RelayOption::Transit(RelayId(2), RelayId(5)));
    }

    #[test]
    fn canonical_collapses_degenerate_transit() {
        let d = RelayOption::Transit(RelayId(3), RelayId(3)).canonical();
        assert_eq!(d, RelayOption::Bounce(RelayId(3)));
    }

    #[test]
    fn relays_in_path_order() {
        assert!(RelayOption::Direct.relays().is_empty());
        assert_eq!(
            RelayOption::Transit(RelayId(4), RelayId(1)).relays(),
            vec![RelayId(4), RelayId(1)]
        );
    }

    #[test]
    fn stable_codes_are_distinct_and_canonical() {
        let codes = [
            RelayOption::Direct.stable_code(),
            RelayOption::Bounce(RelayId(0)).stable_code(),
            RelayOption::Bounce(RelayId(1)).stable_code(),
            RelayOption::Transit(RelayId(0), RelayId(1)).stable_code(),
            RelayOption::Transit(RelayId(1), RelayId(2)).stable_code(),
        ];
        let mut dedup = codes.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
        // Orientation-independent.
        assert_eq!(
            RelayOption::Transit(RelayId(1), RelayId(0)).stable_code(),
            RelayOption::Transit(RelayId(0), RelayId(1)).stable_code()
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(RelayOption::Direct.to_string(), "direct");
        assert_eq!(RelayOption::Bounce(RelayId(3)).to_string(), "bounce(R3)");
        assert_eq!(
            RelayOption::Transit(RelayId(1), RelayId(2)).to_string(),
            "transit(R1,R2)"
        );
    }
}
