//! Deterministic simulated time.
//!
//! The simulation never consults the wall clock. All timestamps are
//! [`SimTime`], seconds since the start of the simulated trace. Aggregation —
//! by the oracle, the tomography predictor, and the temporal-pattern analysis —
//! happens over fixed-width [`Window`]s; the paper's default control period is
//! T = 24 hours (§4.3, §5.1), and Figure 17b sweeps T.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in one hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 24 * SECS_PER_HOUR;

/// A point in simulated time, in whole seconds since trace start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of the trace.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole days.
    pub fn from_days(days: u64) -> Self {
        SimTime(days * SECS_PER_DAY)
    }

    /// Constructs from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        SimTime(hours * SECS_PER_HOUR)
    }

    /// Seconds since trace start.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Whole days since trace start (floor).
    #[inline]
    pub fn day(self) -> u64 {
        self.0 / SECS_PER_DAY
    }

    /// Hour of day in [0, 24), used by the diurnal load model.
    #[inline]
    pub fn hour_of_day(self) -> f64 {
        (self.0 % SECS_PER_DAY) as f64 / SECS_PER_HOUR as f64
    }

    /// Fractional days since trace start.
    #[inline]
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / SECS_PER_DAY as f64
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: u64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    /// Elapsed seconds; saturates at zero rather than panicking on underflow.
    fn sub(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let rem = self.0 % SECS_PER_DAY;
        let h = rem / SECS_PER_HOUR;
        let m = (rem % SECS_PER_HOUR) / 60;
        let s = rem % 60;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

/// The width of an aggregation window.
///
/// The paper's control loop refreshes predictions and top-k candidate sets
/// every `T` hours, with T = 24 by default; Figure 17b sweeps T from hours to
/// multiple days.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowLen {
    secs: u64,
}

impl WindowLen {
    /// The paper's default: 24-hour windows.
    pub const DAY: WindowLen = WindowLen { secs: SECS_PER_DAY };

    /// A window of `hours` hours. Panics if `hours` is zero.
    pub fn hours(hours: u64) -> Self {
        assert!(hours > 0, "window length must be positive");
        WindowLen {
            secs: hours * SECS_PER_HOUR,
        }
    }

    /// Window length in seconds.
    #[inline]
    pub fn secs(self) -> u64 {
        self.secs
    }

    /// A window of exactly `secs` seconds, or `None` if `secs` is zero.
    /// Used when the length comes from untrusted input (e.g. a binary trace
    /// header) and must not panic.
    pub fn secs_checked(secs: u64) -> Option<Self> {
        (secs > 0).then_some(WindowLen { secs })
    }

    /// The window containing `t`.
    #[inline]
    pub fn window_of(self, t: SimTime) -> Window {
        Window {
            index: t.0 / self.secs,
            len: self,
        }
    }
}

impl Default for WindowLen {
    fn default() -> Self {
        WindowLen::DAY
    }
}

/// A concrete aggregation window: the `index`-th interval of width `len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Zero-based window index since trace start.
    pub index: u64,
    /// The window width this index is relative to.
    pub len: WindowLen,
}

impl Window {
    /// Inclusive start time of the window.
    pub fn start(self) -> SimTime {
        SimTime(self.index * self.len.secs())
    }

    /// Exclusive end time of the window.
    pub fn end(self) -> SimTime {
        SimTime((self.index + 1) * self.len.secs())
    }

    /// The immediately preceding window, if any. Predictions for window `w`
    /// are trained on data from `w.prev()` (§5.1: "tomography-based
    /// performance prediction is made based on call performance in the last
    /// 24-hour window").
    pub fn prev(self) -> Option<Window> {
        self.index.checked_sub(1).map(|index| Window {
            index,
            len: self.len,
        })
    }

    /// True if `t` falls inside this window.
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.start() && t < self.end()
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}[{}h]", self.index, self.len.secs() / SECS_PER_HOUR)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_arithmetic() {
        let t = SimTime::from_days(2) + 3 * SECS_PER_HOUR;
        assert_eq!(t.day(), 2);
        assert_eq!(t.hour_of_day(), 3.0);
        assert_eq!(t - SimTime::from_days(2), 3 * SECS_PER_HOUR);
        // Saturating subtraction.
        assert_eq!(SimTime::ZERO - t, 0);
    }

    #[test]
    fn sim_time_display() {
        let t = SimTime::from_days(1) + (2 * SECS_PER_HOUR + 3 * 60 + 4);
        assert_eq!(t.to_string(), "d1+02:03:04");
    }

    #[test]
    fn window_of_assigns_boundaries_correctly() {
        let day = WindowLen::DAY;
        assert_eq!(day.window_of(SimTime(0)).index, 0);
        assert_eq!(day.window_of(SimTime(SECS_PER_DAY - 1)).index, 0);
        assert_eq!(day.window_of(SimTime(SECS_PER_DAY)).index, 1);
    }

    #[test]
    fn window_contains_and_bounds() {
        let w = WindowLen::hours(6).window_of(SimTime::from_hours(7));
        assert_eq!(w.index, 1);
        assert_eq!(w.start(), SimTime::from_hours(6));
        assert_eq!(w.end(), SimTime::from_hours(12));
        assert!(w.contains(SimTime::from_hours(6)));
        assert!(w.contains(SimTime::from_hours(11)));
        assert!(!w.contains(SimTime::from_hours(12)));
    }

    #[test]
    fn window_prev_at_origin() {
        let w0 = WindowLen::DAY.window_of(SimTime::ZERO);
        assert!(w0.prev().is_none());
        let w1 = WindowLen::DAY.window_of(SimTime::from_days(1));
        assert_eq!(w1.prev(), Some(w0));
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_rejected() {
        WindowLen::hours(0);
    }

    #[test]
    fn day_fraction() {
        let t = SimTime::from_hours(36);
        assert!((t.days_f64() - 1.5).abs() < 1e-12);
    }
}
