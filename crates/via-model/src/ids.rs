//! Newtype identifiers for the entities of the VIA world.
//!
//! All identifiers are small dense integers assigned by the topology generator
//! (`via-netsim`), so they can index into `Vec`s without hashing. They are
//! deliberately *not* interchangeable: mixing up an AS id with a relay id is a
//! compile error.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw dense index, suitable for `Vec` indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

dense_id!(
    /// A country or region. The paper's dataset spans 126 countries; the
    /// synthetic world uses a configurable subset with realistic geography.
    CountryId,
    "C"
);

dense_id!(
    /// An autonomous system (eyeball ISP). The paper observes 1.9 K ASes; AS
    /// pairs are the paper's primary spatial aggregation unit.
    AsId,
    "AS"
);

dense_id!(
    /// A VoIP client endpoint. Clients belong to an AS (and hence a country).
    ClientId,
    "U"
);

dense_id!(
    /// A managed relay node hosted in a datacenter. All relays live in a single
    /// provider AS connected by a private backbone (§3.1).
    RelayId,
    "R"
);

dense_id!(
    /// A single audio call in a trace.
    CallId,
    "call"
);

/// An unordered source–destination AS pair.
///
/// The paper aggregates call performance per AS pair ("AS-pair" granularity,
/// §2.3–§2.4, §5.1). Calls are bidirectional streams, so `(a, b)` and `(b, a)`
/// refer to the same network path population; the constructor canonicalizes
/// the order so the pair can be used directly as a map key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsPair {
    /// The smaller AS id of the pair.
    pub lo: AsId,
    /// The larger AS id of the pair.
    pub hi: AsId,
}

impl AsPair {
    /// Builds the canonical (order-independent) pair.
    pub fn new(a: AsId, b: AsId) -> Self {
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// True if both endpoints are in the same AS (an intra-AS call).
    pub fn is_intra_as(&self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for AsPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_pair_is_canonical() {
        let p1 = AsPair::new(AsId(7), AsId(3));
        let p2 = AsPair::new(AsId(3), AsId(7));
        assert_eq!(p1, p2);
        assert_eq!(p1.lo, AsId(3));
        assert_eq!(p1.hi, AsId(7));
    }

    #[test]
    fn as_pair_intra_as() {
        assert!(AsPair::new(AsId(5), AsId(5)).is_intra_as());
        assert!(!AsPair::new(AsId(5), AsId(6)).is_intra_as());
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(CountryId(3).to_string(), "C3");
        assert_eq!(AsId(12).to_string(), "AS12");
        assert_eq!(RelayId(0).to_string(), "R0");
        assert_eq!(AsPair::new(AsId(1), AsId(2)).to_string(), "AS1-AS2");
    }

    #[test]
    fn ids_index_roundtrip() {
        assert_eq!(AsId::from(9u32).index(), 9);
        assert_eq!(ClientId(42).index(), 42);
    }

    #[test]
    fn ids_serde_transparent() {
        let j = serde_json::to_string(&AsId(5)).unwrap();
        assert_eq!(j, "5");
        let back: AsId = serde_json::from_str(&j).unwrap();
        assert_eq!(back, AsId(5));
    }
}
