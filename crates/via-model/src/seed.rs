//! Deterministic sub-seed derivation.
//!
//! Every stochastic component of the reproduction (topology generation,
//! per-segment performance processes, workload arrivals, per-call noise,
//! bandit tie-breaking, …) draws from its own RNG, seeded by mixing the single
//! top-level experiment seed with a stable label. This gives two properties
//! that matter for a simulator:
//!
//! 1. **Reproducibility** — the same top-level seed always yields the same
//!    world and the same trace, regardless of evaluation order.
//! 2. **Independence between components** — adding one more random draw in,
//!    say, the workload generator does not shift the random stream seen by
//!    the performance model.
//!
//! Mixing uses the SplitMix64 finalizer, which is a well-studied bijective
//! avalanche function; it is *not* cryptographic and does not need to be.

/// SplitMix64 finalization step: a bijective mixer with full avalanche.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a string label.
///
/// The label is folded in bytewise through repeated mixing, so `"workload"`
/// and `"topology"` produce unrelated streams even under the same parent.
pub fn derive(parent: u64, label: &str) -> u64 {
    let mut h = splitmix64(parent ^ 0xA076_1D64_78BD_642F);
    for &b in label.as_bytes() {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Derives a child seed from a parent seed and a numeric index, for
/// per-entity streams (e.g. one stream per AS-pair segment).
pub fn derive_indexed(parent: u64, label: &str, index: u64) -> u64 {
    derive_indexed_from(derive(parent, label), index)
}

/// The index-mixing half of [`derive_indexed`], for hot paths that derive
/// many per-entity seeds under one label: hoist `base = derive(parent,
/// label)` out of the loop (the label fold costs one mix round per byte) and
/// mix each index against it. By construction
/// `derive_indexed_from(derive(p, l), i) == derive_indexed(p, l, i)` for
/// every input — same bits, not just same distribution.
#[inline]
pub fn derive_indexed_from(base: u64, index: u64) -> u64 {
    splitmix64(base ^ splitmix64(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive(42, "workload"), derive(42, "workload"));
        assert_eq!(
            derive_indexed(42, "segment", 7),
            derive_indexed(42, "segment", 7)
        );
    }

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive(42, "workload"), derive(42, "topology"));
        assert_ne!(derive(42, "a"), derive(42, "b"));
    }

    #[test]
    fn parents_separate_streams() {
        assert_ne!(derive(1, "x"), derive(2, "x"));
    }

    #[test]
    fn hoisted_base_matches_derive_indexed_exactly() {
        for parent in [0u64, 42, u64::MAX] {
            for label in ["realize", "call", ""] {
                let base = derive(parent, label);
                for index in [0u64, 1, 7, 1 << 34, u64::MAX] {
                    assert_eq!(
                        derive_indexed_from(base, index),
                        derive_indexed(parent, label, index),
                        "hoist diverges for parent {parent} label {label:?} index {index}"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let seeds: HashSet<u64> = (0..1000).map(|i| derive_indexed(7, "segment", i)).collect();
        assert_eq!(seeds.len(), 1000, "indexed seeds must not collide");
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Spot-check injectivity on a contiguous range; SplitMix64 is a
        // bijection so no two inputs may map to the same output.
        let outs: HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn empty_label_differs_from_parent() {
        assert_ne!(derive(42, ""), 42);
    }
}
