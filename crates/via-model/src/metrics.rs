//! Network path performance metrics and the poor-performance thresholds.
//!
//! Each call in the paper's dataset carries three network metrics averaged over
//! the call's duration: round-trip time, packet loss rate, and jitter (§2.1).
//! §2.2 derives thresholds beyond which user-perceived quality degrades
//! markedly: RTT ≥ 320 ms, loss ≥ 1.2 %, jitter ≥ 12 ms. A call is "poor on a
//! metric" if that metric crosses its threshold, and poor on the combined
//! "at least one bad" criterion if any of the three does.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// The three network performance axes tracked per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Round-trip time in milliseconds.
    Rtt,
    /// Packet loss rate in percent (0–100).
    Loss,
    /// Interarrival jitter in milliseconds (RFC 3550 estimator).
    Jitter,
}

impl Metric {
    /// All metrics, in the paper's presentation order.
    pub const ALL: [Metric; 3] = [Metric::Rtt, Metric::Loss, Metric::Jitter];

    /// Unit suffix used when printing values of this metric.
    pub fn unit(self) -> &'static str {
        match self {
            Metric::Rtt => "ms",
            Metric::Loss => "%",
            Metric::Jitter => "ms",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Metric::Rtt => "RTT",
            Metric::Loss => "loss",
            Metric::Jitter => "jitter",
        };
        f.write_str(s)
    }
}

/// Average network performance of one call over one path.
///
/// Semantics follow §2.1 of the paper: values are averages over the whole call
/// (transient spikes are modelled by `via-media` at the packet level but
/// summarized here). Lower is better for every metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathMetrics {
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Packet loss rate in percent (0–100).
    pub loss_pct: f64,
    /// Jitter in milliseconds.
    pub jitter_ms: f64,
}

impl PathMetrics {
    /// Builds a metrics triple, clamping each component to be non-negative
    /// (and loss to at most 100 %). The generative models can occasionally
    /// produce tiny negative excursions through floating-point subtraction;
    /// physical metrics cannot be negative.
    pub fn new(rtt_ms: f64, loss_pct: f64, jitter_ms: f64) -> Self {
        Self {
            rtt_ms: rtt_ms.max(0.0),
            loss_pct: loss_pct.clamp(0.0, 100.0),
            jitter_ms: jitter_ms.max(0.0),
        }
    }

    /// The all-zero (perfect) metrics triple.
    pub const ZERO: PathMetrics = PathMetrics {
        rtt_ms: 0.0,
        loss_pct: 0.0,
        jitter_ms: 0.0,
    };

    /// Component-wise sum; useful for naive path composition in tests.
    /// (The tomography module composes loss and jitter non-linearly; this is
    /// only correct for RTT.)
    pub fn component_sum(&self, other: &PathMetrics) -> PathMetrics {
        PathMetrics::new(
            self.rtt_ms + other.rtt_ms,
            self.loss_pct + other.loss_pct,
            self.jitter_ms + other.jitter_ms,
        )
    }

    /// True if every component is finite (no NaN / infinity).
    pub fn is_finite(&self) -> bool {
        self.rtt_ms.is_finite() && self.loss_pct.is_finite() && self.jitter_ms.is_finite()
    }
}

impl Index<Metric> for PathMetrics {
    type Output = f64;

    fn index(&self, m: Metric) -> &f64 {
        match m {
            Metric::Rtt => &self.rtt_ms,
            Metric::Loss => &self.loss_pct,
            Metric::Jitter => &self.jitter_ms,
        }
    }
}

impl IndexMut<Metric> for PathMetrics {
    fn index_mut(&mut self, m: Metric) -> &mut f64 {
        match m {
            Metric::Rtt => &mut self.rtt_ms,
            Metric::Loss => &mut self.loss_pct,
            Metric::Jitter => &mut self.jitter_ms,
        }
    }
}

impl fmt::Display for PathMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rtt={:.1}ms loss={:.2}% jitter={:.1}ms",
            self.rtt_ms, self.loss_pct, self.jitter_ms
        )
    }
}

/// Poor-performance thresholds from §2.2 of the paper.
///
/// A metric value is *poor* when it is greater than or equal to the threshold.
/// The defaults (320 ms RTT, 1.2 % loss, 12 ms jitter) were chosen in the paper
/// so that roughly the worst 15 % of default-routed calls cross each one, and
/// align with ITU G.114 / industry guidance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// RTT poor threshold in milliseconds.
    pub rtt_ms: f64,
    /// Loss poor threshold in percent.
    pub loss_pct: f64,
    /// Jitter poor threshold in milliseconds.
    pub jitter_ms: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            rtt_ms: 320.0,
            loss_pct: 1.2,
            jitter_ms: 12.0,
        }
    }
}

impl Thresholds {
    /// Threshold for a single metric axis.
    pub fn for_metric(&self, m: Metric) -> f64 {
        match m {
            Metric::Rtt => self.rtt_ms,
            Metric::Loss => self.loss_pct,
            Metric::Jitter => self.jitter_ms,
        }
    }

    /// True if `metrics` is poor on the given axis (value ≥ threshold).
    pub fn is_poor(&self, metrics: &PathMetrics, m: Metric) -> bool {
        metrics[m] >= self.for_metric(m)
    }

    /// True if at least one of the three metrics is poor — the combined
    /// criterion the paper calls "at least one bad" (§2.2, Figure 8b).
    pub fn any_poor(&self, metrics: &PathMetrics) -> bool {
        Metric::ALL.iter().any(|&m| self.is_poor(metrics, m))
    }

    /// Number of poor axes (0–3); used by diagnostics and tests.
    pub fn poor_count(&self, metrics: &PathMetrics) -> usize {
        Metric::ALL
            .iter()
            .filter(|&&m| self.is_poor(metrics, m))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_negative_and_overflow() {
        let m = PathMetrics::new(-5.0, 150.0, -0.1);
        assert_eq!(m.rtt_ms, 0.0);
        assert_eq!(m.loss_pct, 100.0);
        assert_eq!(m.jitter_ms, 0.0);
    }

    #[test]
    fn index_by_metric() {
        let mut m = PathMetrics::new(100.0, 1.0, 5.0);
        assert_eq!(m[Metric::Rtt], 100.0);
        assert_eq!(m[Metric::Loss], 1.0);
        assert_eq!(m[Metric::Jitter], 5.0);
        m[Metric::Jitter] = 9.0;
        assert_eq!(m.jitter_ms, 9.0);
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = Thresholds::default();
        assert_eq!(t.rtt_ms, 320.0);
        assert_eq!(t.loss_pct, 1.2);
        assert_eq!(t.jitter_ms, 12.0);
    }

    #[test]
    fn poor_is_inclusive_at_threshold() {
        let t = Thresholds::default();
        let at = PathMetrics::new(320.0, 0.0, 0.0);
        assert!(t.is_poor(&at, Metric::Rtt));
        let below = PathMetrics::new(319.999, 0.0, 0.0);
        assert!(!t.is_poor(&below, Metric::Rtt));
    }

    #[test]
    fn any_poor_and_count() {
        let t = Thresholds::default();
        let good = PathMetrics::new(50.0, 0.1, 2.0);
        assert!(!t.any_poor(&good));
        assert_eq!(t.poor_count(&good), 0);

        let poor_two = PathMetrics::new(400.0, 2.0, 2.0);
        assert!(t.any_poor(&poor_two));
        assert_eq!(t.poor_count(&poor_two), 2);
    }

    #[test]
    fn component_sum_adds() {
        let a = PathMetrics::new(10.0, 0.5, 1.0);
        let b = PathMetrics::new(20.0, 0.25, 2.0);
        let s = a.component_sum(&b);
        assert_eq!(s.rtt_ms, 30.0);
        assert_eq!(s.loss_pct, 0.75);
        assert_eq!(s.jitter_ms, 3.0);
    }

    #[test]
    fn metric_display_and_units() {
        assert_eq!(Metric::Rtt.to_string(), "RTT");
        assert_eq!(Metric::Loss.unit(), "%");
        assert_eq!(Metric::Jitter.unit(), "ms");
    }
}
