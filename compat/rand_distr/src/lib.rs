//! Offline stand-in for `rand_distr`: the continuous distributions the VIA
//! network model draws from.
//!
//! Implements the textbook samplers — Box–Muller for the normal,
//! `exp(Normal)` for the log-normal, Marsaglia–Tsang for the gamma, and
//! inverse-CDF for the exponential. All are stateless and deterministic
//! given the caller's seeded generator.

pub use rand::distr::Distribution;
use rand::RngCore;

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale-like parameter (standard deviation, scale, rate) was
    /// negative, zero where positivity is required, or non-finite.
    BadParam(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadParam(what) => write!(f, "invalid distribution parameter: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Draws a uniform f64 in [0, 1) from the top 53 bits of `next_u64`.
///
/// Goes through `RngCore` directly (not `Rng::random`) so `?Sized`
/// generators work.
fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws a standard normal deviate via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so ln(u1) is finite; u2 ∈ [0, 1).
    let u1 = uniform01(rng).max(f64::MIN_POSITIVE);
    let u2 = uniform01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a normal with the given mean and standard deviation.
    ///
    /// # Errors
    /// Returns [`Error::BadParam`] if `std_dev` is negative or either
    /// parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadParam("normal std_dev must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    mu: F,
    sigma: F,
}

impl LogNormal<f64> {
    /// Creates a log-normal whose logarithm has mean `mu` and standard
    /// deviation `sigma`.
    ///
    /// # Errors
    /// Returns [`Error::BadParam`] if `sigma` is negative or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal<f64>, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error::BadParam("log-normal sigma must be finite and >= 0"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Gamma distribution with shape `k` and scale `θ` (mean `kθ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma<F = f64> {
    shape: F,
    scale: F,
}

impl Gamma<f64> {
    /// Creates a gamma distribution.
    ///
    /// # Errors
    /// Returns [`Error::BadParam`] unless both `shape` and `scale` are
    /// finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma<f64>, Error> {
        if !(shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0) {
            return Err(Error::BadParam("gamma shape and scale must be > 0"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl Gamma<f64> {
    /// Draws the scale-independent parts of a gamma deviate: `(dv, boost)`
    /// such that a full sample is exactly `dv * scale * boost` (evaluated in
    /// that order). Lets callers apply one set of draws under several scales
    /// — the common-random-numbers pattern — while [`Gamma::sample`] stays
    /// draw-for-draw and bit-for-bit what it always was.
    pub fn sample_parts<R: RngCore + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        // Marsaglia–Tsang squeeze method; the shape < 1 case is boosted
        // through Gamma(shape + 1) · U^(1/shape).
        let (shape, boost) = if self.shape < 1.0 {
            let u = uniform01(rng).max(f64::MIN_POSITIVE);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = uniform01(rng).max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return (d * v, boost);
            }
        }
    }
}

impl Distribution<f64> for Gamma<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let (dv, boost) = self.sample_parts(rng);
        dv * self.scale * boost
    }
}

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<F = f64> {
    lambda: F,
}

impl Exp<f64> {
    /// Creates an exponential distribution.
    ///
    /// # Errors
    /// Returns [`Error::BadParam`] unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Exp<f64>, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error::BadParam("exponential rate must be > 0"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = uniform01(rng).max(f64::MIN_POSITIVE);
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0).expect("valid params");
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_moments() {
        let d = LogNormal::new(0.0, 0.5).expect("valid params");
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let expected_mean = (0.125f64).exp(); // exp(sigma^2 / 2)
        let (mean, _) = moments(&samples);
        assert!((mean - expected_mean).abs() < 0.03, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_moments_both_shape_regimes() {
        let mut rng = StdRng::seed_from_u64(3);
        for (shape, scale) in [(2.5, 3.0), (0.5, 2.0)] {
            let d = Gamma::new(shape, scale).expect("valid params");
            let samples: Vec<f64> = (0..80_000).map(|_| d.sample(&mut rng)).collect();
            let (mean, var) = moments(&samples);
            assert!(
                (mean - shape * scale).abs() < 0.1 * shape * scale,
                "shape {shape}: mean {mean}"
            );
            assert!(
                (var - shape * scale * scale).abs() < 0.15 * shape * scale * scale,
                "shape {shape}: var {var}"
            );
            assert!(samples.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn exp_mean() {
        let d = Exp::new(0.25).expect("valid params");
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&samples);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn constructors_reject_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -2.0).is_err());
        assert!(Exp::new(0.0).is_err());
    }
}
