//! Offline stand-in for `criterion`.
//!
//! Mirrors the bench-authoring API (`Criterion`, `benchmark_group`,
//! `Bencher::iter`/`iter_batched`, `criterion_group!`/`criterion_main!`) with
//! a simple wall-clock harness: each benchmark is warmed up briefly, then
//! timed over a fixed measurement window, and the mean time per iteration is
//! printed. No statistics, plots, or baselines — enough to keep `cargo bench`
//! targets compiling and producing comparable numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(250);

/// How `iter_batched` amortizes setup cost; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, scaled decimally (accepted for compatibility).
    BytesDecimal(u64),
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter*`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE {
            black_box(routine());
            iters += 1;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            black_box(routine(setup()));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let window_start = Instant::now();
        while window_start.elapsed() < MEASURE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.mean_ns = timed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let ns = bencher.mean_ns;
    let time = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b) | Throughput::BytesDecimal(b)) => {
            format!(" ({:.1} MiB/s)", b as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!(" ({:.0} elem/s)", n as f64 / ns * 1e9)
        }
        None => String::new(),
    };
    println!(
        "{name:<40} {time:>12}/iter{rate}   [{} iters]",
        bencher.iters
    );
}

/// The top-level benchmark registry.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Criterion {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(&id.into(), &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group; supports per-group throughput and sample-size hints.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness uses a fixed time window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput reported with each benchmark in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.into()),
            &bencher,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_a_closure() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("copy", |b| {
            b.iter_batched(
                || vec![0u8; 64],
                |v| v.iter().copied().sum::<u8>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }
}
