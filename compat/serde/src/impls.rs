//! [`Serialize`]/[`Deserialize`] implementations for std types.

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::BuildHasher;

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn serialize_value(&self) -> Value {
                // u64 values above i64::MAX need the U64 variant; everything
                // else fits I64.
                let wide = *self as i128;
                if let Ok(v) = i64::try_from(wide) {
                    Value::I64(v)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }

        impl<'de> Deserialize<'de> for $t {
            #[allow(clippy::cast_possible_truncation, clippy::float_cmp)]
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let wide: i128 = match value {
                    Value::I64(v) => i128::from(*v),
                    Value::U64(v) => i128::from(*v),
                    // Accept integral floats: JSON does not distinguish.
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.3e18 => *f as i128,
                    other => return Err(DeError::expected(stringify!($t), other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        concat!("integer {} out of range for ", stringify!($t)),
                        wide
                    ))
                })
            }
        }
    )+};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            #[allow(clippy::cast_lossless)]
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(v) => Ok(*v as $t),
                    Value::U64(v) => Ok(*v as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )+};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::expected("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| DeError::custom(format!("expected {N} elements, found {}", v.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| DeError::expected("array", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        // Sort keys so hash-map ordering never leaks into serialized output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, V: Deserialize<'de>, S: BuildHasher + Default> Deserialize<'de>
    for HashMap<String, V, S>
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}
