//! Offline stand-in for `serde`.
//!
//! The real serde decouples data structures from formats through a visitor
//! API. This workspace only ever serializes to and from JSON, so the
//! stand-in collapses that machinery into a single concrete data model:
//! [`Value`]. [`Serialize`] converts a type *to* a `Value`, [`Deserialize`]
//! reconstructs it *from* one, and the `serde_json` compat crate maps
//! `Value` to and from JSON text. The `#[derive(Serialize, Deserialize)]`
//! macros (re-exported from `serde_derive`) generate the same external
//! representations real serde would: structs as maps, newtype structs as
//! their inner value, enums externally tagged.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// Creates a type-mismatch error: wanted `expected`, found `value`.
    pub fn expected(expected: &str, value: &Value) -> DeError {
        DeError {
            msg: format!("expected {expected}, found {}", value.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can be represented as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
///
/// The lifetime parameter exists so source code written against real serde
/// (`for<'de> Deserialize<'de>` bounds) compiles unchanged; this stand-in
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from the serde data model.
    ///
    /// # Errors
    /// Returns [`DeError`] when `value` does not have the expected shape.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
