//! The serde data model: a JSON-shaped value tree.

/// A dynamically-typed value — the single intermediate representation all
/// (de)serialization in this workspace flows through.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps), so serialized output is deterministic — a property `via-audit`
/// demands of everything on the simulation path.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction or exponent).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an insertion-ordered association list.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Looks up a key in a map, yielding `Null` for missing keys (callers
    /// deserializing `Option` fields treat absent and `null` identically).
    pub fn get(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}
