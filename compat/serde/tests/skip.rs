//! `#[serde(skip)]` derive support: skipped fields are omitted when
//! serializing and refilled from `Default::default()` when deserializing.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct WithSkip {
    kept: u32,
    #[serde(skip)]
    scratch: f64,
    name: String,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum Tagged {
    Unit,
    Named {
        kept: u32,
        #[serde(skip)]
        scratch: f64,
    },
}

#[test]
fn struct_skip_field_is_omitted_and_defaulted() {
    let v = WithSkip {
        kept: 7,
        scratch: 3.5,
        name: "x".into(),
    };
    let value = v.serialize_value();
    let map = value.as_map().unwrap();
    assert_eq!(map.len(), 2, "skipped field must not be serialized");
    assert!(map.iter().all(|(k, _)| k != "scratch"));

    let back = WithSkip::deserialize_value(&value).unwrap();
    assert_eq!(
        back,
        WithSkip {
            scratch: 0.0,
            ..v.clone()
        }
    );
}

#[test]
fn enum_named_variant_skip_field_is_omitted_and_defaulted() {
    let v = Tagged::Named {
        kept: 3,
        scratch: 9.0,
    };
    let value = v.serialize_value();
    let (tag, payload) = &value.as_map().unwrap()[0];
    assert_eq!(tag, "Named");
    assert_eq!(payload.as_map().unwrap().len(), 1);

    let back = Tagged::deserialize_value(&value).unwrap();
    assert_eq!(
        back,
        Tagged::Named {
            kept: 3,
            scratch: 0.0
        }
    );
    assert_eq!(
        Tagged::deserialize_value(&Tagged::Unit.serialize_value()).unwrap(),
        Tagged::Unit
    );
}
