//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset this workspace uses: [`Bytes`] / [`BytesMut`] as
//! `Vec<u8>`-backed buffers, [`Buf`] for big-endian reads that consume a
//! `&[u8]`, and [`BufMut`] for big-endian appends. Reads past the end panic,
//! matching the real crate's contract.

use std::ops::Deref;

/// An immutable byte buffer; dereferences to `&[u8]`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Bytes {
        Bytes { data: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer for building wire messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Buffer length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian reads that consume from the front of a buffer.
///
/// Reads past `remaining()` panic.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Copies bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian appends to the end of a buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.data.resize(self.data.len() + cnt, val);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_bytes(0, 3);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 10);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.remaining(), 3);
        rd.advance(3);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn big_endian_layout_matches_network_order() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn reading_past_end_panics() {
        let mut rd: &[u8] = &[1];
        let _ = rd.get_u16();
    }
}
