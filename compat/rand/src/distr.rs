//! The [`Distribution`] trait. Concrete non-uniform distributions live in
//! the sibling `rand_distr` compat crate.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform `[0, 1)` for floats; full-domain uniform for integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardUniform;

impl<T: crate::StandardSample> Distribution<T> for StandardUniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}
