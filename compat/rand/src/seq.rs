//! Sequence helpers: random element choice and Fisher–Yates shuffling.

use crate::{Rng, RngCore};

/// Random element selection on slices.
pub trait IndexedRandom {
    /// Element type.
    type Item;

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> IndexedRandom for [T] {
    type Item = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.random_range(0..self.len()))
        }
    }
}

/// In-place random permutation of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.random_range(0..=i));
        }
    }
}
