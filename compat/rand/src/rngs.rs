//! Seeded generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
/// seeded from a `u64` through SplitMix64 state expansion.
///
/// Chosen for speed (a handful of ALU ops per draw), a 256-bit state with
/// full-period guarantees, and — unlike the upstream `StdRng` — a stable,
/// documented algorithm, so replay results are reproducible across versions
/// of this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step — used only to expand seeds into state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A tiny, fast generator for tests and shuffling where statistical quality
/// beyond SplitMix64 is not needed.
#[derive(Debug, Clone)]
pub struct SmallRng(u64);

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        SmallRng(state)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.0)
    }
}
