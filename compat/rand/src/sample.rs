//! Uniform sampling machinery behind [`Rng::random`] and
//! [`Rng::random_range`].
//!
//! [`Rng::random`]: crate::Rng::random
//! [`Rng::random_range`]: crate::Rng::random_range

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types with a canonical "standard" distribution: full-domain uniform for
/// integers and `bool`, uniform `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Converts a `u64` draw to a uniform `f64` in `[0, 1)` using the top 53
/// bits (the full mantissa width, so every representable step is reachable).
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Types that can be drawn uniformly from a bounded range.
///
/// The `SampleRange` impls are generic over `T: SampleUniform` (one impl per
/// range *shape*, not per element type) so a literal like `-3.0..3.0` unifies
/// its element type with the surrounding expression — the same inference
/// behavior as upstream rand.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws from the half-open range `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draws from the closed range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let (lo, hi) = (i128::from(lo), i128::from(hi));
                assert!(lo < hi, "cannot sample from empty range");
                let draw = i128::from(rng.next_u64()).rem_euclid(hi - lo);
                (lo + draw) as $t
            }

            #[allow(clippy::cast_possible_truncation)]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (i128::from(lo), i128::from(hi));
                assert!(lo <= hi, "cannot sample from empty range");
                let draw = i128::from(rng.next_u64()).rem_euclid(hi - lo + 1);
                (lo + draw) as $t
            }
        }
    )+};
}

impl_uniform_int!(u8, u16, u32, u64, i8, i16, i32, i64);

// usize/isize lack `From` into i128 on all platforms; go through u64/i64.
impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        u64::sample_range(lo as u64, hi as u64, rng) as usize
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        u64::sample_range_inclusive(lo as u64, hi as u64, rng) as usize
    }
}

impl SampleUniform for isize {
    #[allow(clippy::cast_possible_truncation)]
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        i64::sample_range(lo as i64, hi as i64, rng) as isize
    }

    #[allow(clippy::cast_possible_truncation)]
    fn sample_range_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        i64::sample_range_inclusive(lo as i64, hi as i64, rng) as isize
    }
}

macro_rules! impl_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }

            #[allow(clippy::cast_possible_truncation)]
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                rng: &mut R,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                // The closed upper end is hit with probability ~2^-53 —
                // the same convention upstream rand uses.
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                lo + (u as $t) * (hi - lo)
            }
        }
    )+};
}

impl_uniform_float!(f32, f64);

/// Range types that [`Rng::random_range`](crate::Rng::random_range) accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(lo, hi, rng)
    }
}
