//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in containers with no crates.io access, so the small
//! slice of the `rand 0.10` API the simulator actually uses is reimplemented
//! here: [`rngs::StdRng`] (xoshiro256++ seeded by SplitMix64), the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with `random`, `random_range`
//! and `random_bool`, and the [`distr::Distribution`] trait that
//! `rand_distr` builds on.
//!
//! Everything here is **deterministic by construction**: there is no
//! `thread_rng`, no `from_entropy`, and no OS entropy source at all — the
//! only way to build a generator is from an explicit seed. That property is
//! load-bearing for the replay methodology (common random numbers, §5.1 of
//! the VIA paper) and is enforced workspace-wide by `via-audit`.

pub mod distr;
pub mod rngs;
pub mod seq;

mod sample;

pub use sample::{SampleRange, StandardSample};

/// The items almost every user wants in scope.
pub mod prelude {
    pub use crate::distr::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::{IndexedRandom, SliceRandom};
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// A generator that can be constructed from a seed. Deliberately omits
/// `from_entropy`/`from_os_rng`: all randomness in this workspace must be
/// seeded explicitly.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform over
    /// the full domain for integers and `bool`, uniform in `[0, 1)` for
    /// floats).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distr::Distribution<T>>(&mut self, distribution: &D) -> T
    where
        Self: Sized,
    {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should cover the unit interval");
    }

    #[test]
    fn integer_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_and_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.random_range(1..=u8::MAX);
            assert!(v >= 1);
            let s = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let f = rng.random_range(-0.1..=0.1);
            assert!((-0.1..=0.1).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
