//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's poison-free API: `lock()`,
//! `read()` and `write()` return guards directly. A poisoned std lock (a
//! panic while held) is recovered rather than propagated, matching
//! parking_lot's behavior of not poisoning at all.

use std::sync;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 1);
    }
}
