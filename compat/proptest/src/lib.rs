//! Offline stand-in for `proptest`.
//!
//! Runs each property over a fixed number of cases generated from a
//! deterministic per-test RNG (seeded by hashing the test name), so failures
//! reproduce identically on every run. No shrinking: a failing case panics
//! with the values visible in the assertion message.
//!
//! Supported surface: the `proptest! { #[test] fn name(arg in strategy) {..} }`
//! macro form, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, numeric range
//! strategies, tuple strategies, and `prop::collection::vec`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod collection;
pub mod prelude;

/// Cases generated per property. Fixed (not configurable) so test time is
/// predictable; the real crate's default is 256.
pub const CASES: u32 = 128;

/// Builds the deterministic RNG for one property test.
#[must_use]
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// Strategy producing any value of a type (uniform over its domain).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates arbitrary values of `T`, like proptest's `any::<T>()`.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::StandardSample> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

/// Strategy that always yields the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over [`CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::test_rng(stringify!($name));
                for proptest_case in 0..$crate::CASES {
                    let ($($arg,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut proptest_rng),)+
                    );
                    let _ = proptest_case;
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_test_name() {
        let a: Vec<u64> = {
            let mut r = crate::test_rng("alpha");
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::test_rng("alpha");
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        let c: Vec<u64> = {
            let mut r = crate::test_rng("beta");
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0f64..100.0, n in 1usize..20, b in any::<bool>()) {
            prop_assert!((0.0..100.0).contains(&x));
            prop_assert!((1..20).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_strategy_respects_length(mut xs in prop::collection::vec((0f64..10.0, 0u32..5), 1..30)) {
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            for (f, u) in xs.drain(..) {
                prop_assert!((0.0..10.0).contains(&f));
                prop_assert!(u < 5);
            }
        }
    }
}
