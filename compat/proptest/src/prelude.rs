//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate as prop;
pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
