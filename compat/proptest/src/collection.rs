//! Collection strategies (`prop::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
