//! Recursive-descent JSON parser.

use crate::Error;
use serde::Value;

/// Nesting depth cap: malformed or adversarial input must error, not
/// overflow the stack.
const MAX_DEPTH: usize = 128;

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", char::from(byte))))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character `{}`", char::from(other)))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let code = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match code {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let first = self.hex4()?;
                let scalar = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let second = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&second) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    first
                };
                out.push(char::from_u32(scalar).ok_or_else(|| self.err("invalid unicode escape"))?);
            }
            other => {
                return Err(self.err(&format!("unknown escape `\\{}`", char::from(other))));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text =
            std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape digits"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}
