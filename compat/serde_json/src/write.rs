//! JSON text generation.

use serde::Value;
use std::fmt::Write;

/// Appends `value` as JSON to `out`. `indent = Some(n)` pretty-prints with
/// `n`-space indentation; `None` is compact.
pub fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => write_f64(out, *v),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Floats print with Rust's shortest-roundtrip `Display`; integral values
/// keep a `.0` suffix so they read back as floats, and non-finite values
/// become `null` (JSON has no NaN/Infinity).
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
