//! Offline stand-in for `serde_json`: JSON text ⇄ [`serde::Value`].
//!
//! The writer escapes per RFC 8259 and prints floats with Rust's
//! shortest-roundtrip `Display` (non-finite floats become `null`, matching
//! real serde_json). The reader is a recursive-descent parser with a depth
//! cap; integers parse to `I64`/`U64` and everything else to `F64`.

mod read;
mod write;

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::new(format!("I/O error: {e}"))
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible for the types in this workspace; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the types in this workspace.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value to a compact JSON byte vector.
///
/// # Errors
/// Infallible for the types in this workspace.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Writes compact JSON to an `io::Write`.
///
/// # Errors
/// Returns an error if the underlying writer fails.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Writes pretty-printed JSON to an `io::Write`.
///
/// # Errors
/// Returns an error if the underlying writer fails.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    writer.write_all(to_string_pretty(value)?.as_bytes())?;
    Ok(())
}

/// Parses a value from JSON text.
///
/// # Errors
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let value = read::parse(input)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parses a value from JSON bytes (must be UTF-8).
///
/// # Errors
/// Returns an error on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: for<'de> Deserialize<'de>>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("5").unwrap(), 5.0);
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let t = (1u8, 2.5f64, "x".to_string());
        let s = to_string(&t).unwrap();
        assert_eq!(from_str::<(u8, f64, String)>(&s).unwrap(), t);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1F600} \u{7}".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
        // Surrogate pair for 😀.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn float_extremes_roundtrip() {
        for x in [1e-300, 1.7976931348623157e308, 0.1 + 0.2, -1e30] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<u32>("{{{").is_err());
        assert!(from_str::<u32>("5 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::I64(1), Value::I64(2)])),
            ("b".into(), Value::Str("x".into())),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn object_key_order_is_preserved() {
        let s = r#"{"z": 1, "a": 2}"#;
        let v: Value = from_str(s).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"z":1,"a":2}"#);
    }
}
