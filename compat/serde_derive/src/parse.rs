//! A minimal parser for derive input, built directly on
//! `proc_macro::TokenTree`.
//!
//! `TokenStream` is already a tree — `{...}`, `(...)`, `[...]` arrive as
//! single `Group` tokens — so "top-level comma" splitting only needs to
//! track angle-bracket depth (generics are *not* groups).

use crate::{is_skip_attr, is_transparent_attr};
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed derive target.
pub struct Item {
    /// Type name.
    pub name: String,
    /// Struct/enum shape.
    pub shape: Shape,
    /// Whether `#[serde(transparent)]` was present.
    pub transparent: bool,
}

/// One named field.
pub struct Field {
    /// Field name.
    pub name: String,
    /// Whether `#[serde(skip)]` was present: the field is omitted when
    /// serializing and filled from `Default::default()` when deserializing.
    pub skip: bool,
}

/// The shape of a struct, or of one enum variant.
pub enum Shape {
    /// `struct S { a: T, b: U }` — fields in declaration order.
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);` — field count.
    TupleStruct(usize),
    /// `struct S;` or a unit enum variant.
    UnitStruct,
    /// `enum E { ... }` — only valid at item level.
    Enum(Vec<Variant>),
}

/// One enum variant.
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Variant payload shape (never `Enum`).
    pub shape: Shape,
}

/// Parses a `struct`/`enum` item from derive input.
pub fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut transparent = false;

    // Leading attributes and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    transparent |= is_transparent_attr(&g.stream());
                } else {
                    return Err("malformed attribute".into());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Skip `(crate)` / `(super)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive (offline stand-in) does not support generics on `{name}`"
            ));
        }
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive serde for `{other}` items")),
    };

    Ok(Item {
        name,
        shape,
        transparent,
    })
}

/// Parses `a: T, pub b: U, ...` into fields, honoring `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let skip = skip_attrs_and_vis(&mut tokens)?;
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                fields.push(Field {
                    name: id.to_string(),
                    skip,
                });
                // Skip `: Type` up to the next top-level comma.
                skip_to_comma(&mut tokens);
            }
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

/// Parses enum variants.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens)?;
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_top_level_fields(g.stream());
                tokens.next();
                Shape::TupleStruct(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                Shape::NamedStruct(fields)
            }
            _ => Shape::UnitStruct,
        };
        variants.push(Variant { name, shape });
        // Skip any explicit discriminant, then the separating comma.
        skip_to_comma(&mut tokens);
    }
    Ok(variants)
}

/// Skips leading `#[...]` attributes and `pub`(+restriction) tokens.
/// Returns whether a `#[serde(skip)]` attribute was among them.
fn skip_attrs_and_vis(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Result<bool, String> {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) => skip |= is_skip_attr(&g.stream()),
                    _ => return Err("malformed attribute".into()),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return Ok(skip),
        }
    }
}

/// Consumes tokens up to and including the next comma outside angle
/// brackets. `->` is handled so `Fn(..) -> T` types cannot unbalance the
/// depth count.
fn skip_to_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
}

/// Counts comma-separated fields at the top level of a tuple-struct or
/// tuple-variant body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    let mut last_was_comma = false;
    for token in stream {
        saw_any = true;
        last_was_comma = false;
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                ',' if angle_depth == 0 => {
                    count += 1;
                    last_was_comma = true;
                }
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
    if !saw_any {
        0
    } else if last_was_comma {
        count // trailing comma
    } else {
        count + 1
    }
}
