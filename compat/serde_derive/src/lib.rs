//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` — `syn`/`quote` are not
//! available in the offline build environment. The parser handles the item
//! shapes this workspace actually uses (plain structs, tuple structs, and
//! enums with unit/tuple/struct variants, all without generics) and the
//! `#[serde(transparent)]` attribute. Generated representations match real
//! serde's external conventions: structs become maps, newtype structs become
//! their inner value, enum variants are externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Item, Shape};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse::parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().unwrap_or_else(|e| {
        let msg = format!("serde_derive produced invalid code: {e}");
        // A `compile_error!` literal always lexes; fall back to an empty
        // stream (the compiler then reports the missing impl instead).
        format!("compile_error!({msg:?});")
            .parse()
            .unwrap_or_else(|_| TokenStream::new())
    })
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "::serde::Serialize::serialize_value(&self.{})",
                fields[0].name
            )
        }
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_string(), ::serde::Serialize::serialize_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::UnitStruct => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        Shape::TupleStruct(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![({vname:?}\
                             .to_string(), ::serde::Serialize::serialize_value(f0))]),"
                        ),
                        Shape::TupleStruct(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}\
                                 .to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::NamedStruct(fields) => {
                            // Skipped fields still need a pattern entry;
                            // bind them to `_` so they are not serialized.
                            let binds = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: _", f.name)
                                    } else {
                                        f.name.clone()
                                    }
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "({f:?}.to_string(), \
                                         ::serde::Serialize::serialize_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                        Shape::Enum(_) => unreachable!("variants cannot be enums"),
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "Ok({name} {{ {}: ::serde::Deserialize::deserialize_value(value)? }})",
                fields[0].name
            )
        }
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let skip = f.skip;
                    let f = &f.name;
                    if skip {
                        format!("{f}: ::std::default::Default::default()")
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize_value(value.get({f:?}))\
                             .map_err(|e| ::serde::DeError::custom(format!(\
                             \"field {f}: {{e}}\")))?"
                        )
                    }
                })
                .collect();
            format!(
                "if value.as_map().is_none() {{\n\
                     return Err(::serde::DeError::expected(\"object\", value));\n\
                 }}\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(value)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"array\", value))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::DeError::custom(format!(\
                         \"expected {n} elements, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::UnitStruct => {
                        unit_arms.push(format!("{vname:?} => return Ok({name}::{vname}),"));
                    }
                    Shape::TupleStruct(1) => tagged_arms.push(format!(
                        "{vname:?} => return Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize_value(payload)?)),"
                    )),
                    Shape::TupleStruct(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&items[{i}])?")
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| \
                                     ::serde::DeError::expected(\"array\", payload))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::DeError::custom(\
                                         \"wrong tuple variant arity\"));\n\
                                 }}\n\
                                 return Ok({name}::{vname}({}));\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    Shape::NamedStruct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let skip = f.skip;
                                let f = &f.name;
                                if skip {
                                    format!("{f}: ::std::default::Default::default()")
                                } else {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize_value(\
                                         payload.get({f:?}))?"
                                    )
                                }
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "{vname:?} => return Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ));
                    }
                    Shape::Enum(_) => unreachable!("variants cannot be enums"),
                }
            }
            format!(
                "if let Some(tag) = value.as_str() {{\n\
                     match tag {{\n\
                         {unit}\n\
                         _ => return Err(::serde::DeError::custom(format!(\n\
                             \"unknown variant {{tag:?}} of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 if let Some(entries) = value.as_map() {{\n\
                     if entries.len() == 1 {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             _ => return Err(::serde::DeError::custom(format!(\n\
                                 \"unknown variant {{tag:?}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::DeError::expected(\"enum {name}\", value))",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Returns true if an attribute token group (the `[...]` contents) is
/// `serde(...)` containing the ident `transparent`.
fn is_transparent_attr(group: &TokenStream) -> bool {
    serde_attr_contains(group, "transparent")
}

/// Returns true if an attribute token group (the `[...]` contents) is
/// `serde(...)` containing the ident `skip`.
fn is_skip_attr(group: &TokenStream) -> bool {
    serde_attr_contains(group, "skip")
}

fn serde_attr_contains(group: &TokenStream, word: &str) -> bool {
    let mut tokens = group.clone().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == word)),
        _ => false,
    }
}
