//! Offline stand-in for `crossbeam`.
//!
//! Two modules are provided: `channel`, backed by `std::sync::mpsc` (the
//! subset the testbed uses: bounded channels, non-blocking
//! `try_send`/`try_recv`, and `recv_timeout`), and `thread`, scoped threads
//! with crossbeam's API shape backed by `std::thread::scope` (the subset the
//! window-parallel replay engine uses: `scope` + `Scope::spawn` + join).

pub mod thread {
    //! Scoped threads with crossbeam's API shape.
    //!
    //! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); })` maps onto
    //! `std::thread::scope`; spawned closures receive a `&Scope` so nested
    //! spawns work like the real crate. Unjoined panics propagate when the
    //! scope exits (std semantics) rather than being collected into the
    //! returned `Result`, which is `Ok` unless the caller's closure itself
    //! escapes a panic payload.

    /// Result type of [`scope`], mirroring `crossbeam::thread::scope`.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle for spawning threads that may borrow from the caller's
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; joining yields the closure's result.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it can
        /// spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned; all
    /// spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    /// Mirrors crossbeam's signature; this stand-in always returns `Ok`
    /// (panics in unjoined threads propagate directly, as with
    /// `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let (a, b) = data.split_at(2);
                let ha = s.spawn(|_| a.iter().sum::<u64>());
                let hb = s.spawn(|_| b.iter().sum::<u64>());
                ha.join().unwrap() + hb.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21u32).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }
    }
}

pub mod channel {
    //! Multi-producer channels with crossbeam's API shape.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error from [`Sender::send`] on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel buffer is full.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered or the channel disconnects.
        ///
        /// # Errors
        /// Returns the message back if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Attempts to buffer the message without blocking.
        ///
        /// # Errors
        /// Returns the message back if the buffer is full or the channel is
        /// disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        /// Returns an error once the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Attempts to take a buffered message without blocking.
        ///
        /// # Errors
        /// Returns an error if the buffer is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        /// Returns an error on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out_when_empty() {
            let (_tx, rx) = bounded::<u32>(1);
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn cloned_senders_share_the_channel() {
            let (tx, rx) = bounded::<u32>(4);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42).unwrap())
                .join()
                .unwrap();
            tx.send(7).unwrap();
            let mut got: Vec<u32> = rx.iter().take(2).collect();
            got.sort_unstable();
            assert_eq!(got, vec![7, 42]);
        }
    }
}
