//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`. The
//! subset matches what the testbed uses: bounded channels, non-blocking
//! `try_send`/`try_recv`, and `recv_timeout`.

pub mod channel {
    //! Multi-producer channels with crossbeam's API shape.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error from [`Sender::send`] on a disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel buffer is full.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is buffered or the channel disconnects.
        ///
        /// # Errors
        /// Returns the message back if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }

        /// Attempts to buffer the message without blocking.
        ///
        /// # Errors
        /// Returns the message back if the buffer is full or the channel is
        /// disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.inner.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        ///
        /// # Errors
        /// Returns an error once the channel is empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Attempts to take a buffered message without blocking.
        ///
        /// # Errors
        /// Returns an error if the buffer is empty or disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        /// Returns an error on timeout or disconnection.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Iterates over messages until the channel disconnects.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_backpressure() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert!(rx.try_recv().is_err());
        }

        #[test]
        fn recv_timeout_times_out_when_empty() {
            let (_tx, rx) = bounded::<u32>(1);
            assert!(rx.recv_timeout(Duration::from_millis(5)).is_err());
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn cloned_senders_share_the_channel() {
            let (tx, rx) = bounded::<u32>(4);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42).unwrap())
                .join()
                .unwrap();
            tx.send(7).unwrap();
            let mut got: Vec<u32> = rx.iter().take(2).collect();
            got.sort_unstable();
            assert_eq!(got, vec![7, 42]);
        }
    }
}
