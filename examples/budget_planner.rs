//! Capacity planning for a managed overlay: how much relay budget buys how
//! much quality?
//!
//! An operator considering VIA wants to know the marginal value of relaying
//! capacity before provisioning it. This example sweeps the relaying budget,
//! measures the poor-network rate at each point, and reports the knee —
//! where additional budget stops paying for itself.
//!
//! ```sh
//! cargo run --release --example budget_planner
//! ```

// Example code: terse unwraps keep the walkthrough readable, and an
// abort with the underlying error is acceptable in a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use via::core::replay::{ReplayConfig, ReplaySim};
use via::core::strategy::StrategyKind;
use via::model::metrics::Thresholds;
use via::netsim::{World, WorldConfig};
use via::trace::{TraceConfig, TraceGenerator};

fn main() {
    let seed = 23;
    let world = World::generate(&WorldConfig::tiny(), seed);
    let trace = TraceGenerator::new(&world, TraceConfig::tiny(), seed).generate();
    let thresholds = Thresholds::default();
    let cfg = ReplayConfig {
        seed,
        ..ReplayConfig::default()
    };

    let default_pnr = ReplaySim::new(&world, &trace, cfg.clone())
        .run(StrategyKind::Default)
        .pnr_any(&thresholds);
    let unbounded = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Via);
    let max_benefit = default_pnr - unbounded.pnr_any(&thresholds);
    println!(
        "default PNR = {:.1}%; unbudgeted VIA removes {:.1} points while relaying {:.0}% of calls\n",
        100.0 * default_pnr,
        100.0 * max_benefit,
        100.0 * unbounded.relayed_fraction()
    );

    println!("| budget | relayed | PNR (any) | benefit captured | benefit per point of budget |");
    println!("|---|---|---|---|---|");
    let mut best_efficiency = (0.0f64, 0.0f64); // (budget, captured)
    for budget in [0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8] {
        let out =
            ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::ViaBudgeted { budget });
        let pnr = out.pnr_any(&thresholds);
        let captured = (default_pnr - pnr) / max_benefit.max(1e-9);
        let efficiency = captured / budget;
        println!(
            "| {budget:.2} | {:.0}% | {:.1}% | {:.0}% | {efficiency:.1} |",
            100.0 * out.relayed_fraction(),
            100.0 * pnr,
            100.0 * captured,
        );
        if captured >= 0.5 && best_efficiency.0 == 0.0 {
            best_efficiency = (budget, captured);
        }
    }

    if best_efficiency.0 > 0.0 {
        println!(
            "\nrecommendation: a budget of {:.0}% of calls already captures {:.0}% of the \
             achievable improvement — capacity beyond that has steeply diminishing returns.",
            100.0 * best_efficiency.0,
            100.0 * best_efficiency.1
        );
    }
}
