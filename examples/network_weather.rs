//! Network "weather" on one AS pair: watch the latent world state — daily
//! congestion episodes and the diurnal cycle — that makes static relay
//! pinning fail (§2.4 of the paper).
//!
//! Prints an ASCII strip chart of hourly direct-path quality for two weeks,
//! plus which relaying option the oracle would pick each day.
//!
//! ```sh
//! cargo run --release --example network_weather
//! ```

// Example code: terse unwraps keep the walkthrough readable, and an
// abort with the underlying error is acceptable in a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use via::model::metrics::{Metric, Thresholds};
use via::model::time::SimTime;
use via::model::RelayOption;
use via::netsim::{World, WorldConfig};

fn main() {
    let world = World::generate(&WorldConfig::small(), 14);
    // Pick a *flaky* pair — poor for part of the horizon, fine otherwise —
    // the kind §2.4 shows dominates (most pairs are bad less than 30% of
    // days, for under a day at a stretch).
    let thresholds_probe = Thresholds::default();
    let mut best_pick = (f64::INFINITY, world.ases[0].id, world.ases[1].id);
    for i in (0..world.ases.len()).step_by(3) {
        for j in ((i + 1)..world.ases.len()).step_by(5) {
            let (a, b) = (world.ases[i].id, world.ases[j].id);
            let poor_days = (0..14u64)
                .filter(|&d| {
                    let m = world.perf().option_mean(
                        a,
                        b,
                        RelayOption::Direct,
                        SimTime::from_hours(d * 24 + 12),
                    );
                    thresholds_probe.any_poor(&m)
                })
                .count();
            // Closest to being poor half the time.
            let score = (poor_days as f64 - 7.0).abs();
            if score < best_pick.0 {
                best_pick = (score, a, b);
            }
        }
    }
    let (_, src, dst) = best_pick;
    println!(
        "pair {src} ({}) <-> {dst} ({})\n",
        world.countries[world.ases[src.index()].country.index()].name,
        world.countries[world.ases[dst.index()].country.index()].name,
    );

    let thresholds = Thresholds::default();
    println!("hourly direct-path weather, 14 days (each char = 2h):");
    println!("  . good   - degraded   # poor (any metric beyond threshold)\n");
    for day in 0..14u64 {
        let mut strip = String::new();
        for slot in 0..12u64 {
            let t = SimTime::from_hours(day * 24 + slot * 2);
            let m = world.perf().option_mean(src, dst, RelayOption::Direct, t);
            let poor = thresholds.any_poor(&m);
            let degraded = m.rtt_ms > 0.7 * thresholds.rtt_ms
                || m.loss_pct > 0.7 * thresholds.loss_pct
                || m.jitter_ms > 0.7 * thresholds.jitter_ms;
            strip.push(if poor {
                '#'
            } else if degraded {
                '-'
            } else {
                '.'
            });
        }
        // The oracle's pick for this day.
        let t_mid = SimTime::from_hours(day * 24 + 12);
        let best = world
            .candidate_options(src, dst)
            .into_iter()
            .min_by(|&x, &y| {
                let mx = world.perf().option_mean(src, dst, x, t_mid)[Metric::Rtt];
                let my = world.perf().option_mean(src, dst, y, t_mid)[Metric::Rtt];
                mx.partial_cmp(&my).unwrap()
            })
            .expect("candidates exist");
        println!("day {day:>2}  {strip}   oracle: {best}");
    }
    println!(
        "\nEpisodes come and go on a timescale of days, and the best option moves \
         with them — the case for dynamic, predictive relay selection."
    );
}
