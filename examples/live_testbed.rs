//! Spin up the real loopback testbed: a controller on TCP, relay forwarders
//! on UDP, and instrumented clients exchanging RTP probe streams through
//! emulated WAN impairments — then watch VIA pick relays against ground
//! truth (the §5.5 deployment in miniature).
//!
//! ```sh
//! cargo run --release --example live_testbed
//! ```

// Example code: terse unwraps keep the walkthrough readable, and an
// abort with the underlying error is acceptable in a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use via::model::metrics::Metric;
use via::model::stats::Cdf;
use via::testbed::{evaluate_via_selection, run_testbed, TestbedConfig};

fn main() {
    let cfg = TestbedConfig::fast();
    println!(
        "starting testbed: {} clients, {} relays, {} pairs, {} back-to-back rounds…\n",
        cfg.n_clients, cfg.n_relays, cfg.n_pairs, cfg.rounds
    );

    let result = run_testbed(&cfg).expect("testbed failed");
    println!(
        "collected {} measurements; relays forwarded {} probes, dropped {} (impairment)\n",
        result.reports.len(),
        result.forwarded,
        result.dropped
    );

    // Measured RTT per (pair, relay), averaged over rounds.
    println!("mean measured RTT (ms) per pair and relay:");
    let mut pairs: Vec<(String, String)> = result
        .reports
        .iter()
        .map(|r| (r.caller.clone(), r.callee.clone()))
        .collect();
    pairs.sort();
    pairs.dedup();
    print!("| pair |");
    for r in 0..cfg.n_relays {
        print!(" R{r} |");
    }
    println!();
    print!("|---|");
    for _ in 0..cfg.n_relays {
        print!("---|");
    }
    println!();
    for (caller, callee) in &pairs {
        print!("| {caller}->{callee} |");
        for relay in 0..cfg.n_relays as u16 {
            let vals: Vec<f64> = result
                .reports
                .iter()
                .filter(|r| &r.caller == caller && &r.callee == callee && r.relay == relay)
                .map(|r| r.metrics.rtt_ms)
                .collect();
            if vals.is_empty() {
                print!(" - |");
            } else {
                print!(" {:.0} |", vals.iter().sum::<f64>() / vals.len() as f64);
            }
        }
        println!();
    }

    // VIA's heuristic vs per-round ground truth.
    let eval = evaluate_via_selection(&result.reports, Metric::Rtt);
    println!(
        "\nVIA selection: {} decisions, picked the single best relay {:.0}% of the time",
        eval.decisions,
        100.0 * eval.best_pick_fraction
    );
    if let Some(cdf) = Cdf::from_samples(eval.suboptimality.iter().copied()) {
        println!(
            "sub-optimality: {:.0}% of calls within 20% of the best relay's performance",
            100.0 * cdf.fraction_at_or_below(0.2)
        );
    }
}
