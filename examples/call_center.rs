//! A multinational call-center scenario: one busy international AS pair,
//! watched day by day.
//!
//! A support operator routes thousands of daily calls between its US and
//! India offices. The example shows why static configuration fails — the
//! best relaying option churns across days — and what VIA's predictor and
//! top-k pruning see for this pair.
//!
//! ```sh
//! cargo run --release --example call_center
//! ```

// Example code: terse unwraps keep the walkthrough readable, and an
// abort with the underlying error is acceptable in a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::prelude::*;
use rand::rngs::StdRng;
use via::core::history::{CallHistory, KeyPair};
use via::core::predictor::{GeoPrior, Predictor, PredictorConfig};
use via::core::topk::{top_k, ScoredOption};
use via::model::metrics::Metric;
use via::model::time::{SimTime, WindowLen, SECS_PER_DAY};
use via::model::RelayId;
use via::netsim::{World, WorldConfig};

fn main() {
    let seed = 11;
    let world = World::generate(&WorldConfig::paper_scale(), seed);

    // Pick the first US and first India AS (catalog order puts them first).
    let us = world
        .ases
        .iter()
        .find(|a| world.countries[a.country.index()].name == "United States")
        .expect("US exists");
    let india = world
        .ases
        .iter()
        .find(|a| world.countries[a.country.index()].name == "India")
        .expect("India exists");
    println!(
        "call-center pair: {} ({}) <-> {} ({})\n",
        us.id,
        world.countries[us.country.index()].name,
        india.id,
        world.countries[india.country.index()].name
    );

    let options = world.candidate_options(us.id, india.id);
    println!("candidate options ({}):", options.len());
    for o in &options {
        let names: Vec<String> = o
            .relays()
            .iter()
            .map(|r| world.relays[r.index()].name.clone())
            .collect();
        println!(
            "  {o} {}",
            if names.is_empty() {
                String::new()
            } else {
                format!("[{}]", names.join(" -> "))
            }
        );
    }

    // Day-by-day: the ground-truth best option churns.
    println!("\nday-by-day ground truth (RTT of best option vs direct):");
    println!("| day | direct RTT | best option | best RTT |");
    println!("|---|---|---|---|");
    let mut last_best = None;
    let mut switches = 0;
    for day in 0..14 {
        let t = SimTime(day * SECS_PER_DAY + SECS_PER_DAY / 2);
        let direct = world
            .perf()
            .option_mean(us.id, india.id, via::model::RelayOption::Direct, t);
        let (best, best_m) = options
            .iter()
            .map(|&o| (o, world.perf().option_mean(us.id, india.id, o, t)))
            .min_by(|a, b| a.1.rtt_ms.partial_cmp(&b.1.rtt_ms).unwrap())
            .unwrap();
        if last_best.is_some() && last_best != Some(best) {
            switches += 1;
        }
        last_best = Some(best);
        println!(
            "| {day} | {:.0} ms | {best} | {:.0} ms |",
            direct.rtt_ms, best_m.rtt_ms
        );
    }
    println!(
        "\nbest option switched {switches} times in 14 days — static pinning would miss this."
    );

    // What VIA's controller would see: one day of measurements, then the
    // predictor + top-k pruning for the next day.
    let window = WindowLen::DAY.window_of(SimTime::ZERO);
    let mut history = CallHistory::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for opt in &options {
        for _ in 0..12 {
            let t = SimTime(rng.random_range(0..SECS_PER_DAY));
            let m = world
                .perf()
                .sample_option(us.id, india.id, *opt, t, &mut rng);
            history.record(window, KeyPair::new(us.id.0, india.id.0), *opt, &m);
        }
    }
    let prior = GeoPrior::new(
        world.ases.iter().map(|a| a.pos).collect(),
        world.relays.iter().map(|r| r.pos).collect(),
    );
    let n = world.relays.len();
    let mut bb = vec![via::model::PathMetrics::ZERO; n * n];
    for i in 0..n {
        for j in 0..n {
            bb[i * n + j] = world
                .perf()
                .backbone_metrics(RelayId(i as u32), RelayId(j as u32));
        }
    }
    let predictor = Predictor::fit(
        &history,
        window,
        prior,
        Box::new(move |a: RelayId, b: RelayId| bb[a.index() * n + b.index()]),
        PredictorConfig::default(),
    );

    let scored: Vec<ScoredOption> = options
        .iter()
        .map(|&o| {
            ScoredOption::from_prediction(
                o,
                &predictor.predict(us.id.0, india.id.0, o),
                Metric::Rtt,
            )
        })
        .collect();
    let selected = top_k(&scored);
    println!(
        "\nVIA's top-k after one day of measurements ({} of {} candidates kept):",
        selected.len(),
        options.len()
    );
    println!("| option | predicted RTT | 95% CI |");
    println!("|---|---|---|");
    for s in &selected {
        println!(
            "| {} | {:.0} ms | [{:.0}, {:.0}] |",
            s.option, s.mean, s.lower, s.upper
        );
    }
    println!("\nThe bandit explores only these; everything else is confidently worse.");
}
