//! Quickstart: generate a world, synthesize a call trace, and compare
//! default routing against VIA and the oracle.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Example code: terse unwraps keep the walkthrough readable, and an
// abort with the underlying error is acceptable in a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use via::core::replay::{ReplayConfig, ReplaySim};
use via::core::strategy::StrategyKind;
use via::model::metrics::Thresholds;
use via::netsim::{World, WorldConfig};
use via::trace::{TraceConfig, TraceGenerator};

fn main() {
    // Everything derives from one seed: same seed, same world, same calls,
    // same results.
    let seed = 7;
    let world = World::generate(&WorldConfig::tiny(), seed);
    let trace = TraceGenerator::new(&world, TraceConfig::tiny(), seed).generate();
    println!(
        "world: {} countries, {} ASes, {} relays; trace: {} calls over {} days\n",
        world.countries.len(),
        world.ases.len(),
        world.relays.len(),
        trace.len(),
        trace.days
    );

    let thresholds = Thresholds::default();
    println!("| strategy | PNR RTT | PNR loss | PNR jitter | PNR any | relayed |");
    println!("|---|---|---|---|---|---|");
    for kind in [
        StrategyKind::Default,
        StrategyKind::Via,
        StrategyKind::Oracle,
    ] {
        let cfg = ReplayConfig {
            seed,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg).run(kind);
        let pnr = out.pnr(&thresholds);
        println!(
            "| {} | {:.1}% | {:.1}% | {:.1}% | {:.1}% | {:.0}% |",
            kind.name(),
            100.0 * pnr.rtt,
            100.0 * pnr.loss,
            100.0 * pnr.jitter,
            100.0 * pnr.any,
            100.0 * out.relayed_fraction(),
        );
    }
    println!("\nLower is better; the oracle is the foresight bound VIA approaches.");
}
