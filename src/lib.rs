//! # VIA — predictive relay selection for Internet telephony
//!
//! A full reproduction of *"Via: Improving Internet Telephony Call Quality
//! Using Predictive Relay Selection"* (Jiang et al., SIGCOMM 2016) as a Rust
//! workspace. This facade crate re-exports every sub-crate under one roof so
//! examples and downstream users can depend on a single `via` crate.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`]   | `via-model`   | identifiers, metrics, simulated time, relay options, statistics |
//! | [`netsim`]  | `via-netsim`  | synthetic Internet: geography, ASes, relays, backbone, path performance |
//! | [`media`]   | `via-media`   | RTP packet-level simulation, jitter buffer, packet-trace MOS |
//! | [`quality`] | `via-quality` | E-model MOS, user ratings, PCR, PNR |
//! | [`trace`]   | `via-trace`   | call workload generation, trace records, §2 dataset analysis |
//! | [`core`]    | `via-core`    | tomography predictor, top-k pruning, modified UCB1, budget gate, strategies, replay |
//! | [`obs`]     | `via-obs`     | deterministic metrics/tracing: counters, fixed-bucket histograms, span events |
//! | [`testbed`] | `via-testbed` | real TCP/UDP deployment prototype (§5.5) |
//!
//! ## Quickstart
//!
//! ```
//! use via::core::replay::{ReplayConfig, ReplaySim};
//! use via::core::strategy::StrategyKind;
//! use via::netsim::{World, WorldConfig};
//! use via::trace::workload::{TraceConfig, TraceGenerator};
//!
//! // A miniature world: fast enough for doc tests, same code path as the
//! // paper-scale experiments.
//! let world = World::generate(&WorldConfig::tiny(), 42);
//! let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 42).generate();
//! let mut sim = ReplaySim::new(&world, &trace, ReplayConfig::default());
//! let outcome = sim.run(StrategyKind::Via);
//! println!("PNR(any poor) = {:.3}", outcome.pnr_any(&Default::default()));
//! ```

pub use via_core as core;
pub use via_media as media;
pub use via_model as model;
pub use via_netsim as netsim;
pub use via_obs as obs;
pub use via_quality as quality;
pub use via_testbed as testbed;
pub use via_trace as trace;
