//! Golden-snapshot tests for the experiment pipeline.
//!
//! Each test runs a tiny, fixed-seed experiment end to end and compares its
//! serialized output **byte-for-byte** against a checked-in fixture under
//! `tests/golden/`. Because everything serialized here is part of the
//! deterministic core (replay results and via-obs metrics snapshots carry no
//! wall-clock state), any byte difference is a real behavior change, not
//! noise — these tests pin the whole pipeline: world generation, trace
//! workload, predictor fits, bandit decisions, metric recording, and JSON
//! serialization.
//!
//! # Regenerating fixtures
//!
//! When a change *intentionally* alters replay behavior or the snapshot
//! format, regenerate the fixtures and review the diff like any other code
//! change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -q --test golden_experiments
//! git diff tests/golden/
//! ```
//!
//! Commit the updated fixtures together with the change that explains them.
//! Never regenerate to silence a mismatch you cannot explain.

// Test driver: panicking on a missing fixture or unwritable path is the
// desired failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use via::core::strategy::{MultipathMode, StrategyKind};
use via::model::metrics::{Metric, Thresholds};
use via_experiments::{build_env, pnr_masked, Args, Env, Scale};

/// The one environment every golden derives from: tiny scale, the SIGCOMM
/// seed. Changing either invalidates all fixtures at once — deliberately.
fn golden_env() -> Env {
    build_env(Args {
        scale: Scale::Tiny,
        seed: 2016,
        workers: 1,
    })
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// True when the run should rewrite fixtures instead of checking them.
fn updating() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Byte-compares `actual` against the fixture `name`, or rewrites the
/// fixture under `UPDATE_GOLDEN=1`. On mismatch, reports the first
/// differing line so the failure is diagnosable from CI logs alone.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if updating() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        println!("rewrote {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it with \
             `UPDATE_GOLDEN=1 cargo test -q --test golden_experiments`",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let diff_line = expected
        .lines()
        .zip(actual.lines())
        .position(|(e, a)| e != a)
        .map_or(expected.lines().count().min(actual.lines().count()), |i| i);
    let show = |s: &str| s.lines().nth(diff_line).unwrap_or("<eof>").to_string();
    panic!(
        "golden mismatch for {name} at line {} (expected {} bytes, got {}):\n\
         - {}\n+ {}\n\
         If this change is intended, regenerate with \
         `UPDATE_GOLDEN=1 cargo test -q --test golden_experiments` and commit \
         the fixture diff alongside the change that explains it.",
        diff_line + 1,
        expected.len(),
        actual.len(),
        show(&expected),
        show(actual),
    );
}

/// Pretty JSON with a trailing newline — the same shape `via replay
/// --metrics` and `write_metrics` emit, so fixtures diff cleanly against
/// real artifacts.
fn pretty(value: &via::obs::MetricsSnapshot) -> String {
    let mut s = serde_json::to_string_pretty(value).unwrap();
    s.push('\n');
    s
}

/// The headline determinism contract, pinned as a fixture: a metrics-enabled
/// VIA replay serializes to the same bytes at 1 and 8 workers, and those
/// bytes match the checked-in snapshot.
#[test]
fn replay_metrics_snapshot_matches_golden() {
    let mut env = golden_env();
    let sequential = env.run_observed(StrategyKind::Via, Metric::Rtt);
    let snap_1 = pretty(sequential.obs.as_ref().expect("metrics recorded"));

    env.workers = 8;
    let sharded = env.run_observed(StrategyKind::Via, Metric::Rtt);
    let snap_8 = pretty(sharded.obs.as_ref().expect("metrics recorded"));

    assert_eq!(
        snap_1, snap_8,
        "metrics snapshot must be byte-identical across worker counts"
    );
    check_golden("replay_metrics_tiny.json", &snap_1);
}

/// The Prometheus exposition of the same snapshot: text-format rendering is
/// part of the stable surface (dashboards parse it), so it gets its own
/// fixture.
#[test]
fn prometheus_exposition_matches_golden() {
    let env = golden_env();
    let outcome = env.run_observed(StrategyKind::Via, Metric::Rtt);
    let prom = via::obs::to_prometheus(outcome.obs.as_ref().expect("metrics recorded"));
    check_golden("replay_metrics_tiny.prom", &prom);
}

/// A §5.2-shaped experiment summary: option mix and PNR under the §5.1
/// eligibility mask, for both the learning strategy and the default. The
/// JSON is hand-formatted with fixed precision so the fixture pins the
/// numbers, not a float formatter.
#[test]
fn experiment_summary_matches_golden() {
    let env = golden_env();
    let thresholds = Thresholds::default();
    let mask = env.eligible(Scale::Tiny);

    let via_out = env.run_observed(StrategyKind::Via, Metric::Rtt);
    let default_out = env.run(StrategyKind::Default, Metric::Rtt);

    let (mut direct, mut bounce, mut transit, mut n) = (0usize, 0usize, 0usize, 0usize);
    for c in &via_out.calls {
        if !mask[c.call_index as usize] {
            continue;
        }
        n += 1;
        if c.option.is_bounce() {
            bounce += 1;
        } else if c.option.is_transit() {
            transit += 1;
        } else {
            direct += 1;
        }
    }
    let denom = n.max(1) as f64;
    let pnr_via = pnr_masked(&via_out, &mask, &thresholds).any;
    let pnr_default = pnr_masked(&default_out, &mask, &thresholds).any;
    let snap = via_out.obs.as_ref().expect("metrics recorded");

    let summary = format!(
        "{{\n  \"calls_evaluated\": {n},\n  \"direct_fraction\": {:.6},\n  \
         \"bounce_fraction\": {:.6},\n  \"transit_fraction\": {:.6},\n  \
         \"pnr_any_via\": {:.6},\n  \"pnr_any_default\": {:.6},\n  \
         \"predictor_fits\": {},\n  \"windows\": {},\n  \
         \"bandit_explore\": {}\n}}\n",
        direct as f64 / denom,
        bounce as f64 / denom,
        transit as f64 / denom,
        pnr_via,
        pnr_default,
        snap.counter("replay_predictor_fits_total"),
        snap.counter("replay_windows_total"),
        snap.counter("replay_explore_epsilon_total"),
    );
    check_golden("experiment_summary_tiny.json", &summary);
}

/// The `sec_multipath`-shaped summary and its metrics snapshot, pinned as
/// fixtures: singlepath VIA vs 2-path redundant VIA vs the oracle, plus the
/// multipath counters (paths per call, dedup drops, failovers) and the k×
/// charge of the budgeted gate. Regenerate with `UPDATE_GOLDEN=1` as above.
#[test]
fn multipath_experiment_summary_matches_golden() {
    let env = golden_env();
    let thresholds = Thresholds::default();
    let mask = env.eligible(Scale::Tiny);
    let dup2 = |budget: f64| StrategyKind::Multipath {
        k: 2,
        mode: MultipathMode::Duplicate,
        budget,
    };

    let via_out = env.run(StrategyKind::Via, Metric::Rtt);
    let mp_out = env.run_observed(dup2(1.0), Metric::Rtt);
    let budgeted_out = env.run_observed(dup2(0.3), Metric::Rtt);
    let oracle_out = env.run(StrategyKind::Oracle, Metric::Rtt);

    let pnr = |out: &via::core::Outcome| pnr_masked(out, &mask, &thresholds).any;
    let snap = mp_out.obs.as_ref().expect("metrics recorded");
    let budgeted_snap = budgeted_out.obs.as_ref().expect("metrics recorded");

    let summary = format!(
        "{{\n  \"pnr_any_via\": {:.6},\n  \"pnr_any_multipath\": {:.6},\n  \
         \"pnr_any_multipath_budgeted\": {:.6},\n  \"pnr_any_oracle\": {:.6},\n  \
         \"multipath_extra_paths\": {},\n  \"multipath_dedup_drops\": {},\n  \
         \"multipath_failovers\": {},\n  \"budgeted_gate_admitted\": {},\n  \
         \"budgeted_gate_denied\": {}\n}}\n",
        pnr(&via_out),
        pnr(&mp_out),
        pnr(&budgeted_out),
        pnr(&oracle_out),
        snap.counter("replay_multipath_extra_paths_total"),
        snap.counter("replay_multipath_dedup_drops_total"),
        snap.counter("replay_multipath_failovers_total"),
        budgeted_snap.counter("replay_gate_admitted_total"),
        budgeted_snap.counter("replay_gate_denied_total"),
    );
    check_golden("sec_multipath_summary_tiny.json", &summary);
    check_golden("multipath_metrics_tiny.json", &pretty(snap));
}
