//! Cross-crate integration tests: the full pipeline from world generation
//! through trace synthesis, replay, and quality accounting.

use via::core::replay::{ReplayConfig, ReplaySim};
use via::core::strategy::StrategyKind;
use via::model::metrics::{Metric, Thresholds};
use via::netsim::{World, WorldConfig};
use via::quality::PnrImprovement;
use via::trace::{TraceConfig, TraceGenerator};

fn env() -> (World, via::trace::Trace) {
    let world = World::generate(&WorldConfig::tiny(), 4242);
    let trace = TraceGenerator::new(&world, TraceConfig::tiny(), 4242).generate();
    (world, trace)
}

#[test]
fn full_pipeline_orders_strategies_correctly() {
    let (world, trace) = env();
    let thresholds = Thresholds::default();
    let cfg = ReplayConfig::default();

    let default = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Default);
    let via = ReplaySim::new(&world, &trace, cfg.clone()).run(StrategyKind::Via);
    let oracle = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Oracle);

    let d = default.pnr(&thresholds);
    let v = via.pnr(&thresholds);
    let o = oracle.pnr(&thresholds);

    // On the optimized metric the ordering oracle ≤ via ≤ default must hold
    // (small tolerances for exploration overhead).
    assert!(o.rtt <= v.rtt + 0.02, "oracle {} vs via {}", o.rtt, v.rtt);
    assert!(v.rtt <= d.rtt + 0.01, "via {} vs default {}", v.rtt, d.rtt);

    let imp = PnrImprovement::between(&d, &o);
    assert!(
        imp.rtt > 20.0,
        "oracle should cut RTT PNR by >20%, got {}",
        imp.rtt
    );
}

#[test]
fn every_strategy_produces_one_outcome_per_call() {
    let (world, trace) = env();
    for kind in [
        StrategyKind::Default,
        StrategyKind::Oracle,
        StrategyKind::PredictionOnly,
        StrategyKind::ExplorationOnly,
        StrategyKind::Via,
        StrategyKind::ViaBudgeted { budget: 0.3 },
        StrategyKind::ViaBudgetUnaware { budget: 0.3 },
        StrategyKind::ViaFixedTopK { k: 2 },
        StrategyKind::ViaRawReward,
        StrategyKind::ViaCached { ttl_hours: 12 },
        StrategyKind::HybridRacing { k: 3 },
    ] {
        let out = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(kind);
        assert_eq!(out.calls.len(), trace.len(), "strategy {kind}");
        // Outcomes reference calls in order.
        for (i, c) in out.calls.iter().enumerate() {
            assert_eq!(c.call_index as usize, i);
            assert!(c.metrics.is_finite());
        }
    }
}

#[test]
fn objectives_change_what_gets_optimized() {
    let (world, trace) = env();
    let thresholds = Thresholds::default();

    let mut per_objective = Vec::new();
    for metric in Metric::ALL {
        let cfg = ReplayConfig {
            objective: metric,
            ..ReplayConfig::default()
        };
        let out = ReplaySim::new(&world, &trace, cfg).run(StrategyKind::Oracle);
        per_objective.push((metric, out.pnr(&thresholds)));
    }
    // Optimizing a metric should do at least as well on that metric as the
    // runs optimizing the other two.
    for (metric, own) in &per_objective {
        for (other, theirs) in &per_objective {
            if metric == other {
                continue;
            }
            assert!(
                own.for_metric(*metric) <= theirs.for_metric(*metric) + 0.02,
                "optimizing {metric} should beat optimizing {other} on {metric}"
            );
        }
    }
}

#[test]
fn budgeted_via_relays_less_than_unbudgeted() {
    let (world, trace) = env();
    let tight = ReplaySim::new(&world, &trace, ReplayConfig::default())
        .run(StrategyKind::ViaBudgeted { budget: 0.1 });
    let loose = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
    assert!(
        tight.relayed_fraction() < loose.relayed_fraction(),
        "tight {} vs loose {}",
        tight.relayed_fraction(),
        loose.relayed_fraction()
    );
    assert!(tight.relayed_fraction() <= 0.2, "budget overshoot");
}

#[test]
fn trace_statistics_survive_serialization() {
    let (_, trace) = env();
    let dir = std::env::temp_dir().join("via-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    via::trace::io::write_jsonl(&trace, &path).unwrap();
    let back = via::trace::io::read_jsonl(&path).unwrap();
    let s1 = via::trace::analysis::dataset_summary(&trace);
    let s2 = via::trace::analysis::dataset_summary(&back);
    assert_eq!(s1, s2);
    std::fs::remove_file(&path).ok();
}

#[test]
fn quality_models_agree_on_ordering() {
    // The E-model MOS and the packet-level trace MOS must order calls the
    // same way for clearly-separated conditions.
    use via::media::call_sim::{simulate_call, CallSimConfig};
    use via::model::PathMetrics;

    let good = PathMetrics::new(60.0, 0.1, 2.0);
    let bad = PathMetrics::new(450.0, 5.0, 25.0);
    let emodel_good = via::quality::mos(&good);
    let emodel_bad = via::quality::mos(&bad);
    let trace_good = simulate_call(&good, 60.0, &CallSimConfig::default(), 1).mos;
    let trace_bad = simulate_call(&bad, 60.0, &CallSimConfig::default(), 1).mos;

    assert!(emodel_good > emodel_bad);
    assert!(trace_good > trace_bad);
    // The two scores should roughly agree on the good call.
    assert!((emodel_good - trace_good).abs() < 1.0);
}

#[test]
fn cached_decisions_cut_controller_load() {
    let (world, trace) = env();
    let cached = ReplaySim::new(&world, &trace, ReplayConfig::default())
        .run(StrategyKind::ViaCached { ttl_hours: 12 });
    let plain = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
    assert!(
        cached.controller_contacts < plain.controller_contacts / 2,
        "cache saved too little: {} vs {}",
        cached.controller_contacts,
        plain.controller_contacts
    );
    // Staleness costs some quality but not catastrophically.
    let t = Thresholds::default();
    let c = cached.pnr(&t).rtt;
    let p = plain.pnr(&t).rtt;
    assert!(c <= p * 2.0 + 0.05, "cached {c} vs plain {p}");
}

#[test]
fn hybrid_racing_beats_via_at_a_probe_cost() {
    let (world, trace) = env();
    let t = Thresholds::default();
    let racing = ReplaySim::new(&world, &trace, ReplayConfig::default())
        .run(StrategyKind::HybridRacing { k: 3 });
    let via = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Via);
    let oracle = ReplaySim::new(&world, &trace, ReplayConfig::default()).run(StrategyKind::Oracle);
    assert!(
        racing.pnr(&t).rtt <= via.pnr(&t).rtt + 0.01,
        "racing should not lose to plain VIA on the objective"
    );
    assert!(
        racing.pnr(&t).rtt + 0.02 >= oracle.pnr(&t).rtt,
        "racing cannot beat the oracle by much"
    );
    assert!(
        racing.race_probes > trace.len() as u64,
        "racing must cost extra probes"
    );
    assert_eq!(via.race_probes, 0);
}
