//! Integration tests asserting the paper's §2 measurement *shapes* hold on
//! synthetic traces — the observations that motivate VIA's design.

use via::model::metrics::{Metric, Thresholds};
use via::netsim::{World, WorldConfig};
use via::trace::analysis;
use via::trace::{TraceConfig, TraceGenerator};

fn trace() -> (World, via::trace::Trace) {
    let world = World::generate(&WorldConfig::small(), 77);
    let mut cfg = TraceConfig::small();
    cfg.calls_per_day = 4_000; // enough density, quick enough for CI
    let trace = TraceGenerator::new(&world, cfg, 77).generate();
    (world, trace)
}

#[test]
fn observation_1_network_performance_impacts_experience() {
    let (_, tr) = trace();
    // PCR grows with each metric (Figure 1 shape).
    for (metric, x_max) in [
        (Metric::Rtt, 800.0),
        (Metric::Loss, 8.0),
        (Metric::Jitter, 30.0),
    ] {
        let curve = analysis::pcr_vs_metric(&tr, metric, x_max, 12, 100);
        let corr = curve
            .correlation
            .unwrap_or_else(|| panic!("no correlation for {metric}"));
        assert!(corr > 0.7, "{metric}: PCR correlation too weak ({corr})");
        // First and last populated bins differ strongly.
        let first = curve.bins.first().unwrap().y_mean;
        let last = curve.bins.last().unwrap().y_mean;
        assert!(last > first + 0.05, "{metric}: PCR not increasing");
    }
}

#[test]
fn observation_2_wide_area_calls_suffer_more() {
    let (_, tr) = trace();
    let scope = analysis::pnr_by_scope(&tr, &Thresholds::default());
    let ratio = scope.international.any / scope.domestic.any.max(1e-9);
    assert!(
        (1.5..=5.0).contains(&ratio),
        "international/domestic PNR ratio {ratio} outside the paper's 2-3x ballpark"
    );
    assert!(scope.inter_as.any > scope.intra_as.any);
}

#[test]
fn observation_3a_poor_calls_are_spatially_spread() {
    let (_, tr) = trace();
    let conc = analysis::worst_pair_concentration(&tr, &Thresholds::default());
    // The single worst pair must hold only a small share of poor calls.
    assert!(
        conc[0].1 < 0.2,
        "one pair holds {:.0}% of poor calls — too concentrated",
        100.0 * conc[0].1
    );
    // And a majority of poor calls come from outside the top decile of pairs.
    let top_decile = (conc.len() / 10).max(1);
    assert!(
        conc[top_decile - 1].1 < 0.85,
        "top-decile pairs hold {:.0}%",
        100.0 * conc[top_decile - 1].1
    );
}

#[test]
fn observation_3b_poor_performance_is_temporally_skewed() {
    let (_, tr) = trace();
    let tp = analysis::temporal_patterns(&tr, &Thresholds::default(), 4);
    assert!(tp.prevalence.len() >= 20, "too few qualifying pairs");
    let chronic =
        tp.prevalence.iter().filter(|&&p| p > 0.9).count() as f64 / tp.prevalence.len() as f64;
    let rare =
        tp.prevalence.iter().filter(|&&p| p < 0.3).count() as f64 / tp.prevalence.len() as f64;
    // Figure 6's skew: a minority always bad, a majority rarely bad.
    assert!(chronic < 0.45, "chronic fraction {chronic}");
    assert!(rare > 0.35, "rare fraction {rare}");
}

#[test]
fn thresholds_capture_the_worst_tail() {
    let (_, tr) = trace();
    for metric in Metric::ALL {
        let cdf = analysis::metric_cdf(&tr, metric).unwrap();
        let beyond = cdf.fraction_at_or_above(Thresholds::default().for_metric(metric));
        assert!(
            (0.05..=0.40).contains(&beyond),
            "{metric}: {beyond:.2} of calls beyond threshold (paper: ~0.15)"
        );
    }
}

#[test]
fn dataset_composition_matches_paper() {
    let (_, tr) = trace();
    let s = analysis::dataset_summary(&tr);
    assert!((s.international_fraction - 0.466).abs() < 0.05);
    assert!((s.inter_as_fraction - 0.807).abs() < 0.05);
    assert!((s.wireless_fraction - 0.83).abs() < 0.03);
}
